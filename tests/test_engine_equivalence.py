"""Reference ↔ fast engine equivalence: the fast engine's headline contract.

``ShardedServiceCluster(engine="fast")`` must produce **byte-identical**
``ClusterReport.as_dict()`` output to ``engine="reference"`` — the golden
files pin specific runs, and the suites here sweep the space: every system,
every dispatch policy, randomized traces and scheduler parameters
(hypothesis), the online loop with and without the control plane, and the
batching timeout boundaries where a tie-break bug would first show up.
"""

import json

import pytest
from conftest import (
    SYSTEM_NAMES,
    TENANTS,
    WORKLOAD_POOL,
    make_bursty_tenant_trace,
    make_profile,
)
from hypothesis import given, settings, strategies as st

from repro.serving import (
    Autoscaler,
    BatchScheduler,
    ClosedLoopClients,
    DegradationPolicy,
    DISPATCH_POLICIES,
    ENGINE_FAST,
    ENGINE_REFERENCE,
    InferenceRequest,
    OpenLoopArrivals,
    RequestTrace,
    ServingConfig,
    ServingController,
    ShardedServiceCluster,
    SLOPolicy,
    TenantQuota,
    TraceArrivals,
)
from repro.serving.engine import ShardHeap


def _render(report) -> str:
    return json.dumps(report.as_dict(), sort_keys=True)


def _cluster(services, name, engine, **kwargs):
    kwargs.setdefault("num_shards", 3)
    return ShardedServiceCluster(services[name], engine=engine, **kwargs)


def _pair(services, name, **kwargs):
    return (
        _cluster(services, name, ENGINE_REFERENCE, **kwargs),
        _cluster(services, name, ENGINE_FAST, **kwargs),
    )


# ------------------------------------------------------------------- offline
class TestOfflineEquivalence:
    @pytest.mark.parametrize("name", SYSTEM_NAMES)
    @pytest.mark.parametrize("policy", DISPATCH_POLICIES)
    def test_all_systems_all_policies(self, services, name, policy):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=400.0, seed=5).trace(40)
        scheduler = BatchScheduler(max_batch_size=3, max_wait_seconds=0.004)
        reference, fast = _pair(
            services, name, policy=policy, scheduler=scheduler,
            locality_spill_seconds=0.05,
        )
        assert _render(reference.serve_trace(trace)) == _render(fast.serve_trace(trace))

    @settings(max_examples=20, deadline=None)
    @given(
        name=st.sampled_from(SYSTEM_NAMES),
        policy=st.sampled_from(DISPATCH_POLICIES),
        num_requests=st.integers(min_value=1, max_value=40),
        rate_rps=st.sampled_from([50.0, 400.0, 2000.0]),
        seed=st.integers(min_value=0, max_value=2**16),
        max_batch_size=st.integers(min_value=1, max_value=5),
        max_wait_ms=st.sampled_from([0.0, 1.0, 5.0, 50.0]),
        num_shards=st.integers(min_value=1, max_value=5),
    )
    def test_property_sweep(
        self, services, name, policy, num_requests, rate_rps, seed,
        max_batch_size, max_wait_ms, num_shards,
    ):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=rate_rps, seed=seed).trace(
            num_requests
        )
        scheduler = BatchScheduler(
            max_batch_size=max_batch_size, max_wait_seconds=max_wait_ms * 1e-3
        )
        reference, fast = _pair(
            services, name, num_shards=num_shards, policy=policy, scheduler=scheduler
        )
        assert _render(reference.serve_trace(trace)) == _render(fast.serve_trace(trace))

    def test_slo_scored_offline_run(self, services):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=1000.0, seed=9).trace(30)
        slo = SLOPolicy(default_slo_seconds=0.1, per_workload={"wl-m": 0.2})
        reference, fast = _pair(services, "DynPre")
        assert _render(reference.serve_trace(trace, slo=slo)) == _render(
            fast.serve_trace(trace, slo=slo)
        )

    def test_served_records_match_not_just_summaries(self, services):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=500.0, seed=3).trace(24)
        scheduler = BatchScheduler(max_batch_size=4, max_wait_seconds=0.002)
        reference, fast = _pair(services, "StatPre", scheduler=scheduler)
        ref_report = reference.serve_trace(trace)
        fast_report = fast.serve_trace(trace)
        assert len(ref_report.served) == len(fast_report.served)
        for a, b in zip(ref_report.served, fast_report.served):
            assert a.request == b.request
            assert a.shard_id == b.shard_id
            assert a.batch_size == b.batch_size
            assert a.batching_delay == b.batching_delay
            assert a.dispatch_delay == b.dispatch_delay
            assert a.service_seconds == b.service_seconds
            assert a.report == b.report
        assert ref_report.service_reports() == fast_report.service_reports()


# -------------------------------------------------------------------- online
class TestOnlineEquivalence:
    def test_uncontrolled_replay(self, services):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=600.0, seed=11).trace(30)
        scheduler = BatchScheduler(max_batch_size=3, max_wait_seconds=0.003)
        reference, fast = _pair(services, "DynPre", scheduler=scheduler)
        assert _render(reference.serve_online(TraceArrivals(trace))) == _render(
            fast.serve_online(TraceArrivals(trace))
        )

    @settings(max_examples=10, deadline=None)
    @given(
        name=st.sampled_from(SYSTEM_NAMES),
        seed=st.integers(min_value=0, max_value=2**16),
        num_clients=st.integers(min_value=1, max_value=12),
        slo_ms=st.sampled_from([50.0, 200.0, 1000.0]),
    )
    def test_controlled_closed_loop(self, services, name, seed, num_clients, slo_ms):
        scheduler = BatchScheduler(max_batch_size=3, max_wait_seconds=0.004)
        slo = SLOPolicy(default_slo_seconds=slo_ms * 1e-3)

        def run(engine):
            cluster = _cluster(services, name, engine, scheduler=scheduler)
            scaler = Autoscaler(
                min_shards=1, max_shards=3, scale_up_depth=2.0,
                scale_down_depth=0.5, hysteresis_observations=2,
            )
            clients = ClosedLoopClients(
                WORKLOAD_POOL, num_clients=num_clients, think_seconds=0.005,
                seed=seed, max_requests=30, retry_backoff_seconds=0.02,
            )
            return ServingController(cluster, slo=slo, autoscaler=scaler).serve(clients)

        assert _render(run(ENGINE_REFERENCE)) == _render(run(ENGINE_FAST))


# -------------------------------------------- batching timeout boundaries
class TestTimeoutBoundaries:
    """Size-or-timeout edge cases must close identically in both engines."""

    WAIT = 0.005

    def _reports(self, services, trace, max_batch_size):
        scheduler = BatchScheduler(
            max_batch_size=max_batch_size, max_wait_seconds=self.WAIT
        )
        reference, fast = _pair(
            services, "CPU", num_shards=2, scheduler=scheduler
        )
        offline = (reference.serve_trace(trace), fast.serve_trace(trace))
        online = (
            reference.serve_online(TraceArrivals(trace)),
            fast.serve_online(TraceArrivals(trace)),
        )
        assert _render(offline[0]) == _render(offline[1])
        assert _render(online[0]) == _render(online[1])
        assert _render(offline[0]) == _render(online[0])
        return offline[1]

    def test_arrival_exactly_at_deadline_starts_new_batch(self, services):
        # Third request lands exactly at the first batch's deadline: the
        # timer fires first (deadline <= now), so the batch closes with two
        # members and the boundary request opens a fresh batch.
        w = make_profile()
        trace = RequestTrace(
            [
                InferenceRequest(0, 0.0, w),
                InferenceRequest(1, 0.002, w),
                InferenceRequest(2, self.WAIT, w),
            ]
        )
        report = self._reports(services, trace, max_batch_size=8)
        assert report.num_batches == 2
        sizes = sorted(s.batch_size for s in report.served)
        assert sizes == [1, 2, 2]
        first = next(s for s in report.served if s.request.request_id == 0)
        assert first.batching_delay == pytest.approx(self.WAIT)

    def test_batch_fills_on_the_deadline_tick(self, services):
        # The filling (max_batch_size-th) request arrives exactly when the
        # batch's timer expires: the timer still fires first, so the batch
        # closes *without* the filler in both engines — no double-close, no
        # engine divergence on the tie.
        w = make_profile()
        trace = RequestTrace(
            [
                InferenceRequest(0, 0.0, w),
                InferenceRequest(1, self.WAIT, w),
            ]
        )
        report = self._reports(services, trace, max_batch_size=2)
        assert report.num_batches == 2
        assert all(s.batch_size == 1 for s in report.served)

    def test_fill_and_foreign_deadline_on_same_tick(self, services):
        # Key "a" fills by size at the same instant key "b"'s timer expires:
        # the offline scheduler closes the expired batch first (ready times
        # stay monotone), and the online loop's deadline-before-arrival
        # tie-break reproduces it; both engines must agree on the order.
        a, b = make_profile("a"), make_profile("b")
        trace = RequestTrace(
            [
                InferenceRequest(0, 0.0, b),
                InferenceRequest(1, 0.001, a),
                InferenceRequest(2, self.WAIT, a),
            ]
        )
        report = self._reports(services, trace, max_batch_size=2)
        assert report.num_batches == 2
        a_records = [s for s in report.served if s.request.workload.name == "a"]
        assert all(s.batch_size == 2 for s in a_records)

    def test_zero_wait_disables_cross_request_batching(self, services):
        # max_wait_seconds=0: every deadline coincides with its opener's
        # arrival, so even coincident arrivals close as singleton batches.
        w = make_profile()
        trace = RequestTrace(
            [InferenceRequest(i, 0.0, w) for i in range(4)]
        )
        scheduler = BatchScheduler(max_batch_size=8, max_wait_seconds=0.0)
        reference, fast = _pair(services, "CPU", num_shards=2, scheduler=scheduler)
        ref_report = reference.serve_trace(trace)
        fast_report = fast.serve_trace(trace)
        assert _render(ref_report) == _render(fast_report)
        assert fast_report.num_batches == 4


# --------------------------------------------------- multi-tenant + bursty
class TestTenantEquivalence:
    """Byte-identity must survive tenancy: bursty multi-tenant traffic,
    weighted-fair batching, quota-tiered admission and batching-aware
    estimates all ride the same reference/fast contract."""

    WEIGHTS = {"ent": 3.0, "free": 1.0, "pro": 2.0}

    def _slo(self) -> SLOPolicy:
        return SLOPolicy(
            default_slo_seconds=0.4,
            per_tenant={
                "free": TenantQuota(guaranteed_rps=10.0, weight=1.0, limit_rps=200.0),
                "pro": TenantQuota(guaranteed_rps=25.0, weight=2.0),
                "ent": TenantQuota(guaranteed_rps=40.0, weight=3.0, slo_seconds=0.3),
            },
            excess_rps=15.0,
        )

    @pytest.mark.parametrize("policy", DISPATCH_POLICIES)
    def test_bursty_fair_offline(self, services, policy):
        trace = make_bursty_tenant_trace(WORKLOAD_POOL, num_per_tenant=15, seed=3)
        scheduler = BatchScheduler(
            max_batch_size=3, max_wait_seconds=0.004, tenant_weights=self.WEIGHTS
        )
        reference, fast = _pair(
            services, "DynPre", policy=policy, scheduler=scheduler,
            locality_spill_seconds=0.05,
        )
        slo = self._slo()
        assert _render(reference.serve_trace(trace, slo=slo)) == _render(
            fast.serve_trace(trace, slo=slo)
        )

    def test_bursty_fair_controlled_online(self, services):
        trace = make_bursty_tenant_trace(WORKLOAD_POOL, num_per_tenant=20, seed=9)
        scheduler = BatchScheduler(
            max_batch_size=3, max_wait_seconds=0.004, tenant_weights=self.WEIGHTS
        )

        def run(engine):
            cluster = _cluster(services, "DynPre", engine, scheduler=scheduler)
            scaler = Autoscaler(
                min_shards=1, max_shards=3, scale_up_depth=2.0,
                scale_down_depth=0.5, hysteresis_observations=2,
            )
            controller = ServingController(
                cluster, slo=self._slo(), autoscaler=scaler, batch_aware=True
            )
            return controller.serve(TraceArrivals(trace))

        reference, fast = run(ENGINE_REFERENCE), run(ENGINE_FAST)
        assert _render(reference) == _render(fast)
        # The tenant sections agree record-for-record, not just rendered.
        assert set(reference.tenant_stats) == set(TENANTS)
        for tenant, stats in reference.tenant_stats.items():
            other = fast.tenant_stats[tenant]
            assert stats.offered == other.offered
            assert stats.served == other.served
            assert stats.shed == other.shed
            assert stats.slo_met == other.slo_met
            assert stats.latency == other.latency

    def test_fair_offline_equals_uncontrolled_online_replay(self, services):
        # The fair batcher is one state machine driven by both paths: with
        # no control plane attached, online replay == offline schedule.
        trace = make_bursty_tenant_trace(WORKLOAD_POOL, num_per_tenant=12, seed=5)
        scheduler = BatchScheduler(
            max_batch_size=3, max_wait_seconds=0.003, tenant_weights=self.WEIGHTS
        )
        offline = _cluster(services, "CPU", ENGINE_FAST, scheduler=scheduler)
        online = _cluster(services, "CPU", ENGINE_FAST, scheduler=scheduler)
        assert _render(offline.serve_trace(trace)) == _render(
            online.serve_online(TraceArrivals(trace))
        )

    @settings(max_examples=15, deadline=None)
    @given(
        name=st.sampled_from(SYSTEM_NAMES),
        seed=st.integers(min_value=0, max_value=2**16),
        num_per_tenant=st.integers(min_value=2, max_value=15),
        peak=st.sampled_from([100.0, 500.0, 2000.0]),
        max_batch_size=st.integers(min_value=1, max_value=5),
        max_wait_ms=st.sampled_from([0.0, 1.0, 5.0]),
        num_shards=st.integers(min_value=1, max_value=4),
        fair=st.booleans(),
        slo_ms=st.sampled_from([50.0, 300.0]),
    )
    def test_property_sweep_tenants(
        self, services, name, seed, num_per_tenant, peak, max_batch_size,
        max_wait_ms, num_shards, fair, slo_ms,
    ):
        trace = make_bursty_tenant_trace(
            WORKLOAD_POOL, num_per_tenant=num_per_tenant, peak_rate_rps=peak,
            seed=seed,
        )
        scheduler = BatchScheduler(
            max_batch_size=max_batch_size,
            max_wait_seconds=max_wait_ms * 1e-3,
            tenant_weights=self.WEIGHTS if fair else None,
        )
        slo = SLOPolicy(
            default_slo_seconds=slo_ms * 1e-3,
            per_tenant={"free": TenantQuota(guaranteed_rps=20.0)},
        )

        def run(engine):
            cluster = _cluster(
                services, name, engine, num_shards=num_shards, scheduler=scheduler
            )
            controller = ServingController(cluster, slo=slo, batch_aware=True)
            return controller.serve(TraceArrivals(trace))

        assert _render(run(ENGINE_REFERENCE)) == _render(run(ENGINE_FAST))


# ------------------------------------------------------ graceful degradation
class TestDegradationEquivalence:
    """The degraded-quality admission tier rides the same byte-identity
    contract: degraded requests re-price against their own open batches in
    both engines, and the tiered goodput/tenant sections must agree."""

    WEIGHTS = {"ent": 3.0, "free": 1.0, "pro": 2.0}

    @settings(max_examples=15, deadline=None)
    @given(
        name=st.sampled_from(SYSTEM_NAMES),
        policy=st.sampled_from(DISPATCH_POLICIES),
        seed=st.integers(min_value=0, max_value=2**16),
        num_requests=st.integers(min_value=5, max_value=40),
        rate_rps=st.sampled_from([200.0, 1000.0, 4000.0]),
        slo_ms=st.sampled_from([20.0, 100.0, 500.0]),
        k_factor=st.sampled_from([0.3, 0.5, 1.0]),
        layer_drop=st.integers(min_value=0, max_value=2),
        batch_aware=st.booleans(),
        num_shards=st.integers(min_value=1, max_value=4),
    )
    def test_property_sweep_degraded(
        self, services, name, policy, seed, num_requests, rate_rps, slo_ms,
        k_factor, layer_drop, batch_aware, num_shards,
    ):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=rate_rps, seed=seed).trace(
            num_requests
        )
        config = ServingConfig(
            slo=SLOPolicy(default_slo_seconds=slo_ms * 1e-3),
            admit=True,
            batch_aware=batch_aware,
            degradation=DegradationPolicy(k_factor=k_factor, layer_drop=layer_drop),
        )
        scheduler = BatchScheduler(max_batch_size=3, max_wait_seconds=0.004)

        def run(engine):
            cluster = _cluster(
                services, name, engine, num_shards=num_shards,
                policy=policy, scheduler=scheduler, locality_spill_seconds=0.05,
            )
            return cluster.serve_online(TraceArrivals(trace), config=config)

        reference, fast = run(ENGINE_REFERENCE), run(ENGINE_FAST)
        assert _render(reference) == _render(fast)
        goodput = fast.goodput
        assert (
            goodput.offered
            == goodput.served_full + goodput.served_degraded
            + goodput.shed + goodput.failed
        )

    def test_degraded_tenant_sections_agree(self, services):
        trace = make_bursty_tenant_trace(WORKLOAD_POOL, num_per_tenant=20, seed=7)
        config = ServingConfig(
            slo=SLOPolicy(
                default_slo_seconds=0.05,
                per_tenant={"free": TenantQuota(guaranteed_rps=20.0)},
            ),
            admit=True,
            degradation=DegradationPolicy(k_factor=0.5, layer_drop=1),
        )
        scheduler = BatchScheduler(
            max_batch_size=3, max_wait_seconds=0.004, tenant_weights=self.WEIGHTS
        )

        def run(engine):
            cluster = _cluster(services, "DynPre", engine, scheduler=scheduler)
            return cluster.serve_online(TraceArrivals(trace), config=config)

        reference, fast = run(ENGINE_REFERENCE), run(ENGINE_FAST)
        assert _render(reference) == _render(fast)
        assert reference.goodput.served_degraded > 0, (
            "fixture should exercise the degraded tier"
        )
        for tenant, stats in reference.tenant_stats.items():
            other = fast.tenant_stats[tenant]
            assert stats.served_degraded == other.served_degraded
            assert stats.slo_met_degraded == other.slo_met_degraded


# ------------------------------------------------------- scheduler fast path
class TestScheduleFastEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        num_requests=st.integers(min_value=1, max_value=60),
        rate_rps=st.sampled_from([100.0, 1000.0, 5000.0]),
        seed=st.integers(min_value=0, max_value=2**16),
        max_batch_size=st.integers(min_value=1, max_value=6),
        max_wait_ms=st.sampled_from([0.0, 0.5, 2.0, 20.0]),
    )
    def test_matches_reference_schedule(
        self, num_requests, rate_rps, seed, max_batch_size, max_wait_ms
    ):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=rate_rps, seed=seed).trace(
            num_requests
        )
        scheduler = BatchScheduler(
            max_batch_size=max_batch_size, max_wait_seconds=max_wait_ms * 1e-3
        )
        reference = scheduler.schedule(trace)
        fast = scheduler.schedule_fast(trace)
        assert len(reference) == len(fast)
        for ref_batch, fast_batch in zip(reference, fast):
            assert ref_batch.ready_seconds == fast_batch.ready_seconds
            assert ref_batch.requests == fast_batch.requests
            assert ref_batch.workload == fast_batch.workload


# --------------------------------------------------------------- fast extras
class TestFastEngineExtras:
    def test_compact_preserves_summary(self, services):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=500.0, seed=2).trace(30)
        cluster = _cluster(
            services, "DynPre", ENGINE_FAST,
            scheduler=BatchScheduler(max_batch_size=3, max_wait_seconds=0.002),
        )
        report = cluster.serve_trace(trace)
        rendered = _render(report)
        report.compact()
        assert _render(report) == rendered
        assert report.served == [] and report.num_requests == 30

    def test_compact_requires_aggregates(self, services):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=500.0, seed=2).trace(5)
        report = _cluster(services, "CPU", ENGINE_REFERENCE).serve_trace(trace)
        with pytest.raises(ValueError, match="aggregates"):
            report.compact()

    def test_rejects_unknown_engine(self, services):
        with pytest.raises(ValueError, match="engine"):
            ShardedServiceCluster(services["CPU"], engine="warp")

    def test_serve_cache_reused_across_runs(self, services):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=500.0, seed=4).trace(12)
        cluster = _cluster(services, "DynPre", ENGINE_FAST)
        first = _render(cluster.serve_trace(trace))
        populated = len(cluster._serve_cache)
        assert populated > 0
        # A second replay hits the cache and must not change the outcome
        # (same initial shard state: new clusters replicate the template).
        fresh = _cluster(services, "DynPre", ENGINE_FAST)
        assert _render(fresh.serve_trace(trace)) == first

    def test_unrecorded_decisions_do_not_change_outcomes(self, services):
        slo = SLOPolicy(default_slo_seconds=0.2)

        def run(record):
            cluster = _cluster(services, "DynPre", ENGINE_FAST)
            controller = ServingController(cluster, slo=slo, record_decisions=record)
            clients = ClosedLoopClients(
                WORKLOAD_POOL, num_clients=8, think_seconds=0.0, seed=3,
                max_requests=40, retry_backoff_seconds=0.05,
            )
            report = controller.serve(clients)
            return controller, report

        recorded, report_a = run(True)
        unrecorded, report_b = run(False)
        assert _render(report_a) == _render(report_b)
        assert len(recorded.admission.decisions) > 0
        assert len(report_a.decisions) == len(recorded.admission.decisions)
        # The flag bounds memory: neither the controller log nor the
        # report's decision list accumulates.
        assert unrecorded.admission.decisions == []
        assert report_b.decisions == []

    def test_shard_heap_matches_linear_min(self):
        import random

        rng = random.Random(7)
        heap = ShardHeap(5)
        busy = [0.0] * 5
        for _ in range(200):
            active = rng.randint(1, 5)
            expected = min(range(active), key=lambda i: (busy[i], i))
            assert heap.pick(active) == expected
            shard = rng.randrange(5)
            bump = busy[shard] + rng.random()
            busy[shard] = bump
            heap.update(shard, bump)
