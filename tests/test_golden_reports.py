"""Golden-report regression tests for the serving event loops.

One ``ClusterReport.as_dict()`` per dispatch policy (offline replay) plus one
fully controlled closed-loop run are serialized to ``tests/golden/`` and
asserted byte-stable across runs.  Any silent nondeterminism in the event
loop — iteration over an unordered container, a changed tie-break, float
reassociation — shows up here as a diff before it can corrupt benchmark
comparisons.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/test_golden_reports.py --regen
"""

import json
from pathlib import Path

import pytest

from repro.serving import (
    AdmissionController,
    Autoscaler,
    BatchScheduler,
    BurstyArrivals,
    ClosedLoopClients,
    DegradationPolicy,
    DISPATCH_POLICIES,
    ENGINE_FAST,
    ENGINES,
    OpenLoopArrivals,
    RandomFaults,
    ServingConfig,
    ServingController,
    ShardedServiceCluster,
    SLOPolicy,
    TenantQuota,
    TraceArrivals,
    merge_traces,
)
from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Fixed synthetic workload mix (independent of the dataset registry).
GOLDEN_MIX = [
    WorkloadProfile(name="gold-a", num_nodes=30_000, num_edges=240_000, avg_degree=8.0,
                    batch_size=600),
    WorkloadProfile(name="gold-b", num_nodes=90_000, num_edges=990_000, avg_degree=11.0,
                    batch_size=1200),
]


def _scheduler() -> BatchScheduler:
    return BatchScheduler(max_batch_size=3, max_wait_seconds=0.004)


def _offline_report(services, policy: str, engine: str = ENGINE_FAST):
    trace = OpenLoopArrivals(GOLDEN_MIX, rate_rps=300.0, seed=13).trace(24)
    cluster = ShardedServiceCluster(
        services["StatPre"], num_shards=3, scheduler=_scheduler(), policy=policy,
        locality_spill_seconds=0.05, engine=engine,
    )
    return cluster.serve_trace(trace)


def _controlled_report(services, engine: str = ENGINE_FAST):
    cluster = ShardedServiceCluster(
        services["DynPre"], num_shards=3, scheduler=_scheduler(), engine=engine
    )
    slo = SLOPolicy(default_slo_seconds=0.5, per_workload={"gold-b": 0.4})
    scaler = Autoscaler(
        min_shards=1, max_shards=3, scale_up_depth=2.0, scale_down_depth=0.5,
        hysteresis_observations=2,
    )
    clients = ClosedLoopClients(
        GOLDEN_MIX, num_clients=10, think_seconds=0.01, seed=21, max_requests=40,
        retry_backoff_seconds=0.05,
    )
    return ServingController(cluster, slo=slo, autoscaler=scaler).serve(clients)


def _tenant_trace():
    """Three bursty tenants with staggered phases over the golden mix."""
    streams = [
        BurstyArrivals(
            GOLDEN_MIX, base_rate_rps=60.0, peak_rate_rps=600.0,
            period_seconds=0.4, burst_fraction=0.3, phase_seconds=phase,
            tenant=tenant, seed=31 + i,
        )
        for i, (tenant, phase) in enumerate(
            [("free", 0.0), ("pro", 0.15), ("ent", 0.25)]
        )
    ]
    return merge_traces([stream.trace(16) for stream in streams])


def _tenant_report(services, engine: str = ENGINE_FAST):
    """Fully tenant-aware controlled run: quotas, weighted shedding,
    weighted-fair batching, batching-aware admission and bursty traffic."""
    scheduler = BatchScheduler(
        max_batch_size=3, max_wait_seconds=0.004,
        tenant_weights={"free": 1.0, "pro": 2.0, "ent": 3.0},
    )
    cluster = ShardedServiceCluster(
        services["DynPre"], num_shards=3, scheduler=scheduler, engine=engine
    )
    slo = SLOPolicy(
        default_slo_seconds=0.5,
        per_workload={"gold-b": 0.45},
        per_tenant={
            "free": TenantQuota(guaranteed_rps=10.0, weight=1.0, limit_rps=300.0),
            "pro": TenantQuota(guaranteed_rps=30.0, weight=2.0),
            "ent": TenantQuota(guaranteed_rps=50.0, weight=3.0, slo_seconds=0.4),
        },
        excess_rps=20.0,
    )
    scaler = Autoscaler(
        min_shards=1, max_shards=3, scale_up_depth=2.0, scale_down_depth=0.5,
        hysteresis_observations=2,
    )
    controller = ServingController(
        cluster, slo=slo, autoscaler=scaler, batch_aware=True
    )
    return controller.serve(TraceArrivals(_tenant_trace()))


def _faulted_report(services, engine: str = ENGINE_FAST):
    """Online run under a seeded crash/recover/slowdown schedule.

    Exercises the whole fault path — migration parking, retry backoff,
    budget-exhausted failures, degraded-window accounting, liveness-aware
    admission — so any drift in the fault runtime's event ordering or float
    expressions lands here (the chosen seed produces nonzero migrated,
    retried AND failed counts).
    """
    trace = OpenLoopArrivals(GOLDEN_MIX, rate_rps=400.0, seed=43).trace(48)
    faults = RandomFaults(
        num_shards=3,
        horizon_seconds=trace[-1].arrival_seconds,
        mean_uptime_seconds=0.02,
        mean_downtime_seconds=0.08,
        slowdown_probability=0.25,
        slowdown_factor=2.5,
        retry_budget=1,
        retry_backoff_seconds=0.002,
        seed=47,
    ).schedule()
    cluster = ShardedServiceCluster(
        services["DynPre"], num_shards=3, scheduler=_scheduler(), engine=engine
    )
    slo = SLOPolicy(default_slo_seconds=0.5)
    admission = AdmissionController(policy=slo)
    return cluster.serve_online(
        TraceArrivals(trace), slo=slo, admission=admission, faults=faults
    )


def _degraded_report(services, engine: str = ENGINE_FAST):
    """Overloaded multi-tenant run with the degraded-quality tier active.

    Pins the whole graceful-degradation surface — per-tier goodput and
    tenant splits, degraded requests batching under their own key, the
    "degraded" admission reason — to a byte-stable report (the chosen rate
    produces nonzero full, degraded AND shed counts).
    """
    trace = _tenant_trace()
    config = ServingConfig(
        slo=SLOPolicy(
            default_slo_seconds=0.3,
            per_tenant={
                "free": TenantQuota(guaranteed_rps=5.0, weight=1.0),
                "pro": TenantQuota(guaranteed_rps=10.0, weight=2.0),
                "ent": TenantQuota(guaranteed_rps=15.0, weight=3.0),
            },
        ),
        admit=True,
        batch_aware=True,
        degradation=DegradationPolicy(k_factor=0.5, layer_drop=1),
    )
    cluster = ShardedServiceCluster(
        services["DynPre"], num_shards=2, scheduler=_scheduler(), engine=engine
    )
    return cluster.serve_online(TraceArrivals(trace), config=config)


def _render(report) -> str:
    return json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"cluster_report_{name}.json"


@pytest.fixture(scope="module")
def golden_services():
    return build_services()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("policy", DISPATCH_POLICIES)
def test_offline_report_matches_golden(golden_services, policy, engine):
    rendered = _render(_offline_report(golden_services, policy, engine))
    expected = _golden_path(policy).read_text()
    assert rendered == expected, (
        f"ClusterReport for policy {policy!r} (engine {engine!r}) drifted from "
        "its golden copy; if the change is intentional, regenerate with "
        "`PYTHONPATH=src python tests/test_golden_reports.py --regen`"
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_controlled_report_matches_golden(golden_services, engine):
    rendered = _render(_controlled_report(golden_services, engine))
    expected = _golden_path("controlled").read_text()
    assert rendered == expected


@pytest.mark.parametrize("engine", ENGINES)
def test_tenant_report_matches_golden(golden_services, engine):
    rendered = _render(_tenant_report(golden_services, engine))
    expected = _golden_path("tenant-fairness").read_text()
    assert rendered == expected, (
        f"tenant-fairness ClusterReport (engine {engine!r}) drifted from its "
        "golden copy; if the change is intentional, regenerate with "
        "`PYTHONPATH=src python tests/test_golden_reports.py --regen`"
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_faulted_report_matches_golden(golden_services, engine):
    rendered = _render(_faulted_report(golden_services, engine))
    expected = _golden_path("faulted").read_text()
    assert rendered == expected, (
        f"faulted ClusterReport (engine {engine!r}) drifted from its golden "
        "copy; if the change is intentional, regenerate with "
        "`PYTHONPATH=src python tests/test_golden_reports.py --regen`"
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_degraded_report_matches_golden(golden_services, engine):
    report = _degraded_report(golden_services, engine)
    rendered = _render(report)
    expected = _golden_path("degraded").read_text()
    assert rendered == expected, (
        f"degraded-tier ClusterReport (engine {engine!r}) drifted from its "
        "golden copy; if the change is intentional, regenerate with "
        "`PYTHONPATH=src python tests/test_golden_reports.py --regen`"
    )
    # The fixture must keep exercising all three service outcomes.
    goodput = report.goodput
    assert goodput.served_full > 0
    assert goodput.served_degraded > 0
    assert goodput.shed > 0


@pytest.mark.parametrize("policy", DISPATCH_POLICIES)
def test_offline_report_stable_across_runs(golden_services, policy):
    """Two fresh clusters over the same trace render identically."""
    assert _render(_offline_report(golden_services, policy)) == _render(
        _offline_report(golden_services, policy)
    )


def test_controlled_report_stable_across_runs(golden_services):
    assert _render(_controlled_report(golden_services)) == _render(
        _controlled_report(golden_services)
    )


def test_tenant_report_stable_across_runs(golden_services):
    assert _render(_tenant_report(golden_services)) == _render(
        _tenant_report(golden_services)
    )


def test_faulted_report_stable_across_runs(golden_services):
    assert _render(_faulted_report(golden_services)) == _render(
        _faulted_report(golden_services)
    )


def test_degraded_report_stable_across_runs(golden_services):
    assert _render(_degraded_report(golden_services)) == _render(
        _degraded_report(golden_services)
    )


def regenerate_all() -> None:
    """Rewrite every golden file from the current implementation."""
    services = build_services()
    GOLDEN_DIR.mkdir(exist_ok=True)
    for policy in DISPATCH_POLICIES:
        _golden_path(policy).write_text(_render(_offline_report(services, policy)))
        print(f"wrote {_golden_path(policy)}")
    _golden_path("controlled").write_text(_render(_controlled_report(services)))
    print(f"wrote {_golden_path('controlled')}")
    _golden_path("tenant-fairness").write_text(_render(_tenant_report(services)))
    print(f"wrote {_golden_path('tenant-fairness')}")
    _golden_path("faulted").write_text(_render(_faulted_report(services)))
    print(f"wrote {_golden_path('faulted')}")
    _golden_path("degraded").write_text(_render(_degraded_report(services)))
    print(f"wrote {_golden_path('degraded')}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regen" in sys.argv:
        regenerate_all()
    else:
        sys.exit(pytest.main([__file__, "-q"]))
