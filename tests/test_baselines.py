"""Tests for the compared preprocessing systems (CPU/GPU/GSamp/FPGA/others)."""

import pytest

from repro.baselines import (
    CPUPreprocessingSystem,
    FPGASamplerSystem,
    GPUPreprocessingSystem,
    GPUSerializationAnalysis,
    GSampSystem,
    OTHER_ACCELERATORS,
    AcceleratorDeployment,
    SingleFunctionAccelerator,
)
from repro.baselines.calibration import CPU_CALIBRATION, GPU_CALIBRATION
from repro.baselines.cpu import software_task_latencies
from repro.system.workload import WorkloadProfile


@pytest.fixture
def small_workload():
    return WorkloadProfile.from_dataset("PH")


@pytest.fixture
def large_workload():
    return WorkloadProfile.from_dataset("AM")


class TestSoftwareModels:
    def test_cpu_slower_than_gpu(self, large_workload):
        cpu = CPUPreprocessingSystem().evaluate(large_workload)
        gpu = GPUPreprocessingSystem().evaluate(large_workload)
        assert cpu.preprocessing.total > gpu.preprocessing.total

    def test_conversion_dominates_large_graphs(self, large_workload):
        gpu = software_task_latencies(large_workload, GPU_CALIBRATION)
        conversion = gpu.ordering + gpu.reshaping
        sampling = gpu.selecting + gpu.reindexing
        assert conversion > sampling

    def test_sampling_dominates_small_graphs(self, small_workload):
        gpu = software_task_latencies(small_workload, GPU_CALIBRATION)
        conversion = gpu.ordering + gpu.reshaping
        sampling = gpu.selecting + gpu.reindexing
        assert sampling > conversion

    def test_latency_scales_with_edges(self):
        small = software_task_latencies(WorkloadProfile.from_dataset("PH"), CPU_CALIBRATION)
        large = software_task_latencies(WorkloadProfile.from_dataset("TB"), CPU_CALIBRATION)
        assert large.total > small.total

    def test_gpu_transfer_is_full_graph(self, large_workload):
        gpu = GPUPreprocessingSystem().evaluate(large_workload)
        cpu = CPUPreprocessingSystem().evaluate(large_workload)
        assert gpu.transfers.host_to_gpu > cpu.transfers.host_to_gpu

    def test_bandwidth_utilization_bounds(self, large_workload):
        for system in (CPUPreprocessingSystem(), GPUPreprocessingSystem()):
            report = system.evaluate(large_workload)
            assert 0.0 <= report.bandwidth_utilization <= 1.0


class TestSamplingAccelerators:
    def test_gsamp_speeds_up_sampling_only(self, small_workload):
        gpu = GPUPreprocessingSystem().evaluate(small_workload)
        gsamp = GSampSystem().evaluate(small_workload)
        assert gsamp.preprocessing.selecting < gpu.preprocessing.selecting
        assert gsamp.preprocessing.ordering == pytest.approx(gpu.preprocessing.ordering)

    def test_fpga_sampler_has_extra_transfers(self, large_workload):
        fpga = FPGASamplerSystem().evaluate(large_workload)
        gpu = GPUPreprocessingSystem().evaluate(large_workload)
        assert fpga.transfers.total > gpu.transfers.total
        assert fpga.preprocessing.selecting < gpu.preprocessing.selecting

    def test_invalid_speedup_rejected(self):
        with pytest.raises(ValueError):
            GSampSystem(sampling_speedup=0)
        with pytest.raises(ValueError):
            FPGASamplerSystem(sampling_speedup=-1)


class TestSerializationAnalysis:
    def test_fraction_in_range(self, small_workload, large_workload):
        analysis = GPUSerializationAnalysis()
        for workload in (small_workload, large_workload):
            result = analysis.analyze(workload)
            assert 0.0 < result["serialized_fraction"] < 1.0

    def test_serial_split_sums_to_100(self, large_workload):
        analysis = GPUSerializationAnalysis()
        result = analysis.analyze(large_workload)
        split = [v for k, v in result.items() if k.startswith("serial_share_")]
        assert sum(split) == pytest.approx(100.0)

    def test_ordering_excluded_from_serial_split(self, large_workload):
        analysis = GPUSerializationAnalysis()
        result = analysis.analyze(large_workload)
        assert "serial_share_ordering" not in result


class TestOtherAccelerators:
    def test_four_designs(self):
        assert len(OTHER_ACCELERATORS) == 4

    @pytest.mark.parametrize("spec", OTHER_ACCELERATORS, ids=lambda s: s.key)
    def test_deployment_ladder_improves(self, spec, large_workload):
        pure = SingleFunctionAccelerator(spec, AcceleratorDeployment.PURE).evaluate(large_workload)
        with_scr = SingleFunctionAccelerator(spec, AcceleratorDeployment.WITH_SCR).evaluate(large_workload)
        auto = SingleFunctionAccelerator(spec, AcceleratorDeployment.AUTO).evaluate(large_workload)
        assert with_scr.total <= pure.total * 1.05
        assert auto.total <= with_scr.total * 1.05

    def test_pure_accelerates_its_stage(self, large_workload):
        spec = OTHER_ACCELERATORS[0]  # merge sorter: ordering
        gpu = GPUPreprocessingSystem().evaluate(large_workload)
        pure = SingleFunctionAccelerator(spec, AcceleratorDeployment.PURE).evaluate(large_workload)
        assert pure.preprocessing.ordering < gpu.preprocessing.ordering

    def test_auto_deployment_drops_graph_upload(self, large_workload):
        spec = OTHER_ACCELERATORS[2]
        pure = SingleFunctionAccelerator(spec, AcceleratorDeployment.PURE).evaluate(large_workload)
        auto = SingleFunctionAccelerator(spec, AcceleratorDeployment.AUTO).evaluate(large_workload)
        assert auto.transfers.total < pure.transfers.total
