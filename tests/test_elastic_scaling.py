"""Voluntary scale-down drains: migration, accounting, engine equivalence.

PR 6 fixed the *crash* path (queued work on a dead shard re-picks a live
one); these tests pin the symmetric *voluntary* path: when the autoscaler
shrinks the active set with ``drain=True`` (the default), queued batches on
the leaving shard re-pick among the survivors, in-flight work runs to
completion, the ``ScalingEvent`` records the migrated/completed counts, and
``ClusterReport.shard_seconds`` bills the drained shard only to its lowered
(post-migration) horizon.  Every drained run must stay byte-identical
between the reference loop and the fast engine — the `ShardHeap` active
prefix and the shared :class:`~repro.serving.faults.DrainPlanner` are
exercised by a pinned scale-down/scale-up cycle and a hypothesis sweep of
schedules × faults × tenants.

The drain scenarios are built in units of ``d`` — one measured service pass
of the pinned workload — so the burst backlog, the trickle arrivals, and the
hysteresis crossings land deterministically whatever the calibrated model
says a pass costs.
"""

import json

import pytest
from conftest import WORKLOAD_POOL, make_bursty_tenant_trace, make_profile
from hypothesis import given, settings, strategies as st

from repro.analysis.report import format_timeline
from repro.serving import (
    Autoscaler,
    BatchScheduler,
    ENGINE_FAST,
    ENGINE_REFERENCE,
    FaultEvent,
    FaultSchedule,
    InferenceRequest,
    RequestTrace,
    ScalingEvent,
    ServingConfig,
    ShardedServiceCluster,
    SLOPolicy,
    TenantQuota,
    TraceArrivals,
)
from repro.serving.cluster import _home_shard
from repro.serving.scheduler import RequestBatch


def _render(report) -> str:
    return json.dumps(report.as_dict(), sort_keys=True)


def _profile_with_home(home: int, num_candidates: int, batch_size: int = 800):
    """A workload profile whose locality home shard is ``home``."""
    for i in range(64):
        profile = make_profile(f"drain-{i}", batch_size=batch_size)
        batch = RequestBatch(
            requests=[
                InferenceRequest(request_id=0, arrival_seconds=0.0, workload=profile)
            ],
            ready_seconds=0.0,
        )
        if _home_shard(batch, num_candidates) == home:
            return profile
    raise AssertionError("no candidate profile hashed to the requested home shard")


@pytest.fixture(scope="module")
def drain_setup(services):
    """The pinned drain scenario's profile and its measured pass time."""
    profile = _profile_with_home(home=1, num_candidates=2)
    d = services["CPU"].replicate().serve(profile).total_seconds
    return profile, d


def _drain_cluster(services, engine):
    # Locality with an infinite spill pins every batch to the profile's
    # home shard, so the backlog deterministically builds on shard 1 —
    # the shard a 2 -> 1 scale-down deactivates.
    return ShardedServiceCluster(
        services["CPU"],
        num_shards=2,
        scheduler=BatchScheduler(max_batch_size=1),
        policy="locality",
        engine=engine,
    )


def _scaler(drain=True):
    return Autoscaler(
        min_shards=1,
        max_shards=2,
        scale_up_depth=4.0,
        scale_down_depth=3.0,
        hysteresis_observations=2,
        warmup_seconds=0.0,
        drain=drain,
    )


def _trace(profile, d, units):
    return RequestTrace(
        [
            InferenceRequest(request_id=i, arrival_seconds=u * d, workload=profile)
            for i, u in enumerate(units)
        ]
    )


#: Burst of 12 at t=0 (scales 1 -> 2, backlog builds on both shards), then
#: two trickle arrivals deep inside the backlog horizon: the queue-depth
#: signal drops below the scale-down band while shard 1 still holds queued
#: and in-flight work — exactly the stranding scenario drains exist for.
BURST_THEN_TROUGH = [0.0] * 12 + [5.4, 5.5]

#: The same trough followed by a second flash crowd and a late tail, so the
#: drained shard is reactivated mid-run (scale-down/scale-up cycle).
SCALE_CYCLE = [0.0] * 12 + [5.4, 5.5] + [6.0 + 0.01 * i for i in range(12)] + [12.0, 12.1]


# --------------------------------------------------------------- drain basics
@pytest.mark.parametrize("engine", [ENGINE_REFERENCE, ENGINE_FAST])
def test_scale_down_migrates_queued_work(services, drain_setup, engine):
    """A drained scale-down migrates queued batches and reports the counts."""
    profile, d = drain_setup
    report = _drain_cluster(services, engine).serve_online(
        TraceArrivals(_trace(profile, d, BURST_THEN_TROUGH)),
        config=ServingConfig(autoscaler=_scaler()),
    )
    # Nothing is stranded or lost: every request is served.
    assert report.num_requests == len(BURST_THEN_TROUGH)
    down = [event for event in report.scaling_timeline if event.reason == "scale-down"]
    assert len(down) == 1
    # Queued work on the leaving shard re-picked a survivor; in-flight work
    # ran to completion on the leaving shard.
    assert down[0].migrated == 2
    assert down[0].completed == 1
    up = [event for event in report.scaling_timeline if event.reason == "scale-up"]
    assert all(event.migrated == 0 and event.completed == 0 for event in up)


def test_drain_beats_drainless_on_shard_seconds(services, drain_setup):
    """The drained shard is not billed for backlog that migrated away."""
    profile, d = drain_setup
    trace = _trace(profile, d, BURST_THEN_TROUGH)

    def run(drain):
        return _drain_cluster(services, ENGINE_FAST).serve_online(
            TraceArrivals(trace), config=ServingConfig(autoscaler=_scaler(drain=drain))
        )

    drained, stranded = run(True), run(False)
    # Same demand either way; the drain-less run strands its queued work on
    # the deactivated shard (it still serves eventually — the lease just
    # keeps paying for it).
    assert drained.num_requests == stranded.num_requests
    assert drained.shard_seconds < stranded.shard_seconds
    assert all(
        event.migrated == 0 and event.completed == 0
        for event in stranded.scaling_timeline
    )


@pytest.mark.parametrize("units", [BURST_THEN_TROUGH, SCALE_CYCLE])
def test_drained_runs_byte_identical_across_engines(services, drain_setup, units):
    """Satellite 1: dispatch across a scale-down/scale-up cycle is pinned.

    The fast engine's ``ShardHeap`` must never hand a batch to a shard that
    left the active set mid-run; byte-identical reports (served records
    carry shard ids) prove both engines dispatched every batch identically
    through the drain and the reactivation.
    """
    profile, d = drain_setup
    trace = _trace(profile, d, units)

    def run(engine):
        return _drain_cluster(services, engine).serve_online(
            TraceArrivals(trace), config=ServingConfig(autoscaler=_scaler())
        )

    reference, fast = run(ENGINE_REFERENCE), run(ENGINE_FAST)
    assert _render(reference) == _render(fast)
    assert reference.num_requests == len(units)
    reasons = [event.reason for event in reference.scaling_timeline]
    if units is SCALE_CYCLE:
        # The cycle really happened: the drained shard was reactivated.
        assert "scale-down" in reasons
        assert reasons.index("scale-down") < len(reasons) - 1
        assert reasons[-1] == "scale-up"
        # No served request landed on shard 1 in the window where it was
        # out of the active set.
        down_at = next(
            event.seconds
            for event in reference.scaling_timeline
            if event.reason == "scale-down"
        )
        up_at = next(
            event.seconds
            for event in reference.scaling_timeline
            if event.reason == "scale-up" and event.seconds > down_at
        )
        for served in reference.served:
            # Reconstructed with float roundoff (sojourn sums service back
            # in), so boundary starts get an epsilon margin: the reactivating
            # arrival legitimately starts at exactly ``up_at``.
            start = served.request.arrival_seconds + served.sojourn_seconds - (
                served.service_seconds
            )
            if served.shard_id == 1 and down_at + 1e-9 < start < up_at - 1e-9:
                # Work committed inside the drained window may only be
                # backlog planned before the drain... which the drain
                # migrated.  Nothing new may start there.
                raise AssertionError(
                    f"request {served.request.request_id} started on the "
                    f"drained shard at {start:.6f}"
                )


# ----------------------------------------------------------- stale rebalance
def test_rebalance_rehomes_stale_traffic(services):
    """Alternating workload keys stop ping-ponging one home shard."""
    sharing_home = []
    for i in range(64):
        profile = make_profile(f"key-{i}", batch_size=300)
        batch = RequestBatch(
            requests=[
                InferenceRequest(request_id=0, arrival_seconds=0.0, workload=profile)
            ],
            ready_seconds=0.0,
        )
        if _home_shard(batch, 2) == 1:
            sharing_home.append(profile)
        if len(sharing_home) == 2:
            break
    first, second = sharing_home
    assert first.batch_key != second.batch_key

    def run(engine, rebalance_seconds):
        cluster = ShardedServiceCluster(
            services["CPU"],
            num_shards=2,
            scheduler=BatchScheduler(max_batch_size=1),
            policy="locality",
            rebalance_seconds=rebalance_seconds,
            engine=engine,
        )
        trace = RequestTrace(
            [
                InferenceRequest(
                    request_id=i,
                    arrival_seconds=0.001 * i,
                    workload=first if i % 2 == 0 else second,
                )
                for i in range(12)
            ]
        )
        return cluster.serve_trace(trace)

    pinned = run(ENGINE_FAST, None)
    rebalanced = run(ENGINE_FAST, 10.0)
    # Both keys hash to shard 1: without rebalancing everything lands there;
    # with it, the conflicting key re-homes to the idle shard.
    assert pinned.shard_requests == [0, 12]
    assert sorted(rebalanced.shard_requests) == [6, 6]
    assert _render(run(ENGINE_REFERENCE, 10.0)) == _render(rebalanced)


def test_rebalance_rejects_negative_window(services):
    with pytest.raises(ValueError):
        ShardedServiceCluster(services["CPU"], num_shards=2, rebalance_seconds=-0.1)


# ------------------------------------------------------------ event reporting
def test_record_drain_accumulates_on_last_event():
    scaler = Autoscaler(min_shards=1, max_shards=2, hysteresis_observations=1)
    scaler.start(0.0)
    scaler.observe(1.0, 100.0)  # crosses scale_up_depth -> scale-up event
    scaler.record_drain(migrated=3, completed=2)
    scaler.record_drain(migrated=1, completed=0)
    timeline = scaler.timeline()
    assert timeline[-1].reason == "scale-up"
    assert (timeline[-1].migrated, timeline[-1].completed) == (4, 2)
    # Earlier events are untouched.
    assert timeline[0].reason == "init"
    assert timeline[0].migrated == 0


def test_record_drain_without_events_is_noop():
    scaler = Autoscaler(min_shards=1, max_shards=2)
    scaler.record_drain(migrated=5, completed=5)  # no start() yet
    assert scaler.events == []


def test_format_timeline_renders_drain_outcomes():
    events = [
        ScalingEvent(0.0, 1, "init"),
        ScalingEvent(1.5, 2, "scale-up"),
        ScalingEvent(3.0, 1, "scale-down", migrated=4, completed=2),
    ]
    rendered = format_timeline("scaling", events)
    assert "migrated" in rendered and "completed" in rendered
    assert "4" in rendered and "2" in rendered

    class Legacy:
        seconds = 0.0
        active_shards = 1
        reason = "init"

    legacy = format_timeline("scaling", [Legacy()])
    assert "migrated" in legacy  # renders, with zero counts


def test_shard_seconds_reported_only_for_autoscaled_runs(services, drain_setup):
    profile, d = drain_setup
    offline = _drain_cluster(services, ENGINE_FAST).serve_trace(
        _trace(profile, d, [0.0] * 4)
    )
    assert offline.shard_seconds is None
    # The provisioned fallback bills every shard for the whole run.
    assert offline.provisioned_shard_seconds == (
        offline.num_shards * offline.makespan_seconds
    )
    assert offline.as_dict()["shard_seconds"] == offline.provisioned_shard_seconds

    online = _drain_cluster(services, ENGINE_FAST).serve_online(
        TraceArrivals(_trace(profile, d, BURST_THEN_TROUGH)),
        config=ServingConfig(autoscaler=_scaler()),
    )
    assert online.shard_seconds is not None
    assert online.provisioned_shard_seconds == online.shard_seconds
    # Elasticity must not bill more than always-on provisioning would.
    assert online.shard_seconds <= online.num_shards * online.makespan_seconds


# ------------------------------------------------- schedules x faults x tenants
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    num_per_tenant=st.integers(min_value=5, max_value=15),
    min_shards=st.integers(min_value=1, max_value=2),
    hysteresis=st.integers(min_value=1, max_value=3),
    scale_down_depth=st.sampled_from([0.5, 1.0, 3.0]),
    with_faults=st.booleans(),
    with_admission=st.booleans(),
    drain=st.booleans(),
)
def test_scale_down_sweep_conserves_and_matches(
    services,
    seed,
    num_per_tenant,
    min_shards,
    hysteresis,
    scale_down_depth,
    with_faults,
    with_admission,
    drain,
):
    """Satellite 4: scale-down schedules x faults x tenants.

    Exact conservation (``offered == served_full + served_degraded + shed +
    failed``) and byte-identical reports in both engines, whatever the
    autoscaler, fault schedule and tenant mix do to the active set.
    """
    trace = make_bursty_tenant_trace(
        WORKLOAD_POOL, num_per_tenant=num_per_tenant, seed=seed
    )
    slo = SLOPolicy(
        default_slo_seconds=0.25,
        per_tenant={
            "ent": TenantQuota(guaranteed_rps=5.0, weight=3.0),
            "free": TenantQuota(weight=1.0),
        },
    )
    faults = (
        FaultSchedule(
            [
                FaultEvent(seconds=0.01, shard_id=1, kind="crash"),
                FaultEvent(seconds=0.25, shard_id=1, kind="recover"),
            ],
            retry_budget=1,
        )
        if with_faults
        else None
    )
    config = ServingConfig(
        slo=slo,
        admit=with_admission,
        autoscaler=Autoscaler(
            min_shards=min_shards,
            max_shards=3,
            scale_up_depth=scale_down_depth + 2.0,
            scale_down_depth=scale_down_depth,
            hysteresis_observations=hysteresis,
            warmup_seconds=0.002,
            drain=drain,
        ),
        faults=faults,
    )

    def run(engine):
        cluster = ShardedServiceCluster(
            services["DynPre"],
            num_shards=3,
            scheduler=BatchScheduler(max_batch_size=3, max_wait_seconds=0.004),
            policy="locality",
            engine=engine,
        )
        return cluster.serve_online(TraceArrivals(trace), config=config)

    reference, fast = run(ENGINE_REFERENCE), run(ENGINE_FAST)
    assert _render(reference) == _render(fast)
    goodput = reference.goodput
    assert goodput.offered == len(trace)
    assert goodput.offered == (
        goodput.served_full + goodput.served_degraded + goodput.shed + goodput.failed
    )
    migrated = sum(event.migrated for event in reference.scaling_timeline)
    completed = sum(event.completed for event in reference.scaling_timeline)
    assert migrated >= 0 and completed >= 0
    if not drain:
        assert migrated == 0 and completed == 0
