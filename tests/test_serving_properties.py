"""Property-based tests of the serving layer's two headline contracts.

1. *Identity*: a 1-shard cluster with batch size 1 reproduces
   ``GNNService.serve_many`` report-for-report, for every compared system
   and any workload sequence — the cluster is a strict generalisation of
   the sequential service.
2. *Scaling monotonicity*: on a fixed trace with least-loaded dispatch and a
   state-independent system, throughput never decreases when shards are
   added (greedy earliest-free assignment without precedence constraints is
   anomaly-free).
"""

import pytest
from conftest import SYSTEM_NAMES, WORKLOAD_POOL
from hypothesis import given, settings, strategies as st

from repro.serving import (
    BatchScheduler,
    InferenceRequest,
    OpenLoopArrivals,
    POLICY_LEAST_LOADED,
    RequestTrace,
    ShardedServiceCluster,
)

workload_lists = st.lists(
    st.sampled_from(WORKLOAD_POOL), min_size=1, max_size=6
)


@settings(max_examples=20, deadline=None)
@given(name=st.sampled_from(SYSTEM_NAMES), workloads=workload_lists,
       gap_ms=st.integers(min_value=0, max_value=50))
def test_single_shard_batch_one_matches_serve_many(services, name, workloads, gap_ms):
    """1 shard + batch size 1 == sequential serve_many, report-identical.

    Holds for stateful systems too (DynPre's reconfiguration history evolves
    identically because the replica starts from the same initial state and
    sees the same workload sequence in the same order).
    """
    trace = RequestTrace(
        [
            InferenceRequest(request_id=i, arrival_seconds=i * gap_ms * 1e-3, workload=w)
            for i, w in enumerate(workloads)
        ]
    )
    cluster = ShardedServiceCluster(
        services[name],
        num_shards=1,
        scheduler=BatchScheduler(max_batch_size=1),
        policy=POLICY_LEAST_LOADED,
    )
    cluster_reports = cluster.serve_trace(trace).service_reports()
    sequential_reports = services[name].replicate().serve_many(workloads)
    assert len(cluster_reports) == len(sequential_reports)
    for got, expected in zip(cluster_reports, sequential_reports):
        assert got == expected


@settings(max_examples=15, deadline=None)
@given(
    num_requests=st.integers(min_value=4, max_value=24),
    rate_rps=st.sampled_from([50.0, 200.0, 1000.0]),
    seed=st.integers(min_value=0, max_value=2**16),
    max_batch_size=st.integers(min_value=1, max_value=4),
)
def test_throughput_monotone_in_shard_count(services, num_requests, rate_rps, seed, max_batch_size):
    """Adding shards never lowers throughput on a fixed trace.

    Uses the CPU system (stateless: each batch's service time is independent
    of which shard runs it or what ran before), least-loaded dispatch, and
    the same scheduler for every shard count — batching is shard-independent
    by construction, so only the dispatch layer varies.
    """
    trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=rate_rps, seed=seed).trace(num_requests)
    scheduler = BatchScheduler(max_batch_size=max_batch_size, max_wait_seconds=0.002)
    previous = 0.0
    for num_shards in (1, 2, 3, 4, 6, 8):
        cluster = ShardedServiceCluster(
            services["CPU"],
            num_shards=num_shards,
            scheduler=scheduler,
            policy=POLICY_LEAST_LOADED,
        )
        throughput = cluster.serve_trace(trace).throughput_rps
        assert throughput >= previous * (1.0 - 1e-9)
        previous = throughput


@settings(max_examples=10, deadline=None)
@given(workloads=workload_lists)
def test_batched_pass_preserves_request_count(services, workloads):
    """Every request appears in exactly one batch and one served record."""
    trace = RequestTrace(
        [
            InferenceRequest(request_id=i, arrival_seconds=0.0, workload=w)
            for i, w in enumerate(workloads)
        ]
    )
    cluster = ShardedServiceCluster(
        services["StatPre"],
        num_shards=2,
        scheduler=BatchScheduler(max_batch_size=3, max_wait_seconds=0.01),
    )
    report = cluster.serve_trace(trace)
    assert report.num_requests == len(workloads)
    served_ids = sorted(s.request.request_id for s in report.served)
    assert served_ids == list(range(len(workloads)))
    assert sum(report.shard_requests) == len(workloads)


def test_identity_holds_for_every_system_on_fixed_sequence(services):
    """Deterministic cross-check of the identity contract for all seven."""
    workloads = [WORKLOAD_POOL[0], WORKLOAD_POOL[1], WORKLOAD_POOL[0], WORKLOAD_POOL[2]]
    for name in SYSTEM_NAMES:
        cluster = ShardedServiceCluster(
            services[name], num_shards=1, scheduler=BatchScheduler(max_batch_size=1)
        )
        got = cluster.serve_workloads(workloads).service_reports()
        expected = services[name].replicate().serve_many(workloads)
        assert got == expected, f"identity violated for {name}"


def test_monotonicity_gate_two_x_at_four_shards(services):
    """The benchmark's acceptance gate in miniature: 4 shards >= 2x 1 shard."""
    trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=2000.0, seed=3).trace(64)
    scheduler = BatchScheduler(max_batch_size=4, max_wait_seconds=0.002)

    def throughput(num_shards):
        cluster = ShardedServiceCluster(
            services["DynPre"], num_shards=num_shards, scheduler=scheduler
        )
        return cluster.serve_trace(trace).throughput_rps

    assert throughput(4) >= 2.0 * throughput(1)


def test_monotonicity_tolerates_round_robin_smoke(services):
    """Round-robin is not covered by the monotonicity proof; it must still
    serve every request and produce a positive throughput."""
    trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=500.0, seed=4).trace(20)
    for num_shards in (1, 3, 5):
        cluster = ShardedServiceCluster(
            services["GSamp"],
            num_shards=num_shards,
            scheduler=BatchScheduler(max_batch_size=2, max_wait_seconds=0.001),
            policy="round-robin",
        )
        report = cluster.serve_trace(trace)
        assert report.num_requests == 20
        assert report.throughput_rps > 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
