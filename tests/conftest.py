"""Shared fixtures for the test suite.

Besides the graph/hardware fixtures, this module centralises the serving
layer's test setup (workload profiles, traces, reference services/clusters)
that used to be copy-pasted across ``test_serving.py`` and
``test_serving_properties.py``, and registers the hypothesis profiles the
CI pipeline selects with ``--hypothesis-profile=ci``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core.config import HardwareConfig
from repro.graph.coo import COOGraph
from repro.graph.convert import coo_to_csc
from repro.graph.generators import GraphSpec, power_law_graph
from repro.serving import (
    BatchScheduler,
    BurstyArrivals,
    InferenceRequest,
    OpenLoopArrivals,
    RequestTrace,
    ShardedServiceCluster,
    merge_traces,
)
from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

# --------------------------------------------------------- hypothesis profiles
# "ci" is fully derandomized (fixed example seed) so hypothesis failures are
# reproducible across CI runs; "dev" keeps random exploration locally.
settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


# ------------------------------------------------------------ serving helpers
def make_profile(name: str = "synth", batch_size: int = 100, **kwargs) -> WorkloadProfile:
    """A small synthetic workload profile (kwargs override the defaults)."""
    defaults = dict(num_nodes=50_000, num_edges=400_000, avg_degree=8.0)
    defaults.update(kwargs)
    return WorkloadProfile(name=name, batch_size=batch_size, **defaults)


def zero_gap_trace(workloads) -> RequestTrace:
    """All requests arriving at t = 0, ids in list order."""
    return RequestTrace(
        [
            InferenceRequest(request_id=i, arrival_seconds=0.0, workload=w)
            for i, w in enumerate(workloads)
        ]
    )


#: Small pool of distinct serving workloads shared by the property suites.
WORKLOAD_POOL = [
    WorkloadProfile(name="wl-s", num_nodes=20_000, num_edges=150_000, avg_degree=7.5,
                    batch_size=500),
    WorkloadProfile(name="wl-m", num_nodes=80_000, num_edges=900_000, avg_degree=11.25,
                    batch_size=1500),
    WorkloadProfile(name="wl-u", num_nodes=40_000, num_edges=300_000, avg_degree=7.5,
                    batch_size=800, update_fraction=0.2),
]

#: The seven compared systems' labels (static so strategies can sample them
#: at collection time without building the services).
SYSTEM_NAMES = ("AutoPre", "CPU", "DynPre", "FPGA", "GPU", "GSamp", "StatPre")

#: Tenant names shared by the multi-tenant suites.
TENANTS = ("ent", "free", "pro")


def make_bursty_tenant_trace(
    workloads,
    tenants=TENANTS,
    num_per_tenant: int = 20,
    base_rate_rps: float = 50.0,
    peak_rate_rps: float = 500.0,
    period_seconds: float = 0.5,
    burst_fraction: float = 0.3,
    seed: int = 0,
) -> RequestTrace:
    """One bursty stream per tenant, phases staggered across the period."""
    streams = [
        BurstyArrivals(
            workloads,
            base_rate_rps=base_rate_rps,
            peak_rate_rps=peak_rate_rps,
            period_seconds=period_seconds,
            burst_fraction=burst_fraction,
            phase_seconds=i * period_seconds / len(tenants),
            tenant=tenant,
            seed=seed + i,
        )
        for i, tenant in enumerate(tenants)
    ]
    return merge_traces([stream.trace(num_per_tenant) for stream in streams])


@pytest.fixture(scope="session")
def services():
    """The seven reference GNN services, built once per test session.

    Templates only: tests must ``replicate()`` (directly or through a
    cluster) before mutating state, so examples never leak state into each
    other.
    """
    return build_services()


@pytest.fixture
def serving_profile():
    """Factory fixture for small synthetic workload profiles."""
    return make_profile


@pytest.fixture
def small_trace() -> RequestTrace:
    """A 10-request open-loop Poisson trace over two small workloads."""
    return OpenLoopArrivals(
        [make_profile("a"), make_profile("b")], rate_rps=100.0, seed=3
    ).trace(10)


@pytest.fixture
def medium_trace() -> RequestTrace:
    """A 60-request open-loop Poisson trace over the shared workload pool."""
    return OpenLoopArrivals(WORKLOAD_POOL, rate_rps=300.0, seed=7).trace(60)


@pytest.fixture
def cluster_factory(services):
    """Factory fixture: build a reference cluster for a named system.

    Defaults to per-request batches (``max_batch_size=1``) like the cluster
    itself; pass ``scheduler=BatchScheduler(...)`` to override.
    """

    def build(name: str, num_shards: int = 2, **kwargs) -> ShardedServiceCluster:
        kwargs.setdefault("scheduler", BatchScheduler(max_batch_size=1))
        return ShardedServiceCluster(services[name], num_shards=num_shards, **kwargs)

    return build


# ------------------------------------------------------------ graph fixtures
@pytest.fixture
def small_graph() -> COOGraph:
    """A small random graph exercised by most functional tests."""
    return power_law_graph(GraphSpec(num_nodes=60, num_edges=400, degree_skew=0.4, seed=7))


@pytest.fixture
def medium_graph() -> COOGraph:
    """A medium synthetic graph for kernel-level tests."""
    return power_law_graph(GraphSpec(num_nodes=300, num_edges=3000, degree_skew=0.6, seed=11))


@pytest.fixture
def small_csc(small_graph):
    """CSC conversion of the small graph."""
    return coo_to_csc(small_graph)


@pytest.fixture
def tiny_hardware() -> HardwareConfig:
    """A deliberately tiny hardware configuration for detailed emulation."""
    return HardwareConfig(num_upes=4, upe_width=16, num_scrs=2, scr_width=32)
