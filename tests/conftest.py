"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import HardwareConfig
from repro.graph.coo import COOGraph
from repro.graph.convert import coo_to_csc
from repro.graph.generators import GraphSpec, power_law_graph


@pytest.fixture
def small_graph() -> COOGraph:
    """A small random graph exercised by most functional tests."""
    return power_law_graph(GraphSpec(num_nodes=60, num_edges=400, degree_skew=0.4, seed=7))


@pytest.fixture
def medium_graph() -> COOGraph:
    """A medium synthetic graph for kernel-level tests."""
    return power_law_graph(GraphSpec(num_nodes=300, num_edges=3000, degree_skew=0.6, seed=11))


@pytest.fixture
def small_csc(small_graph):
    """CSC conversion of the small graph."""
    return coo_to_csc(small_graph)


@pytest.fixture
def tiny_hardware() -> HardwareConfig:
    """A deliberately tiny hardware configuration for detailed emulation."""
    return HardwareConfig(num_upes=4, upe_width=16, num_scrs=2, scr_width=32)
