"""The chaos-sweep invariant harness (tier-1 budget).

CI runs the same harness with a larger ``--examples`` budget as a separate
job (``python -m repro.serving.chaos``); this tier keeps a small sweep in
the default test run so invariant regressions surface locally.
"""

import json

import pytest

import repro.serving.chaos as chaos_module
from repro.serving import (
    INVARIANTS,
    ChaosInvariantError,
    chaos_scenarios,
    run_chaos_sweep,
    run_scenario,
)

#: Tier-1 sweep budget — the CI chaos job runs a much larger one.
TEST_SWEEP_EXAMPLES = 10


def test_scenarios_are_deterministic_and_cover_required_races():
    first = chaos_scenarios(TEST_SWEEP_EXAMPLES, seed=1)
    second = chaos_scenarios(TEST_SWEEP_EXAMPLES, seed=1)
    assert len(first) == TEST_SWEEP_EXAMPLES
    assert [s.as_dict() for s in first] == [s.as_dict() for s in second]
    names = {s.name for s in first}
    # The handcrafted edge scenarios always lead the sweep.
    assert {
        "edge-recover-same-instant",
        "edge-outage-races-drain",
        "edge-retry-storm-budget0",
        "edge-whole-cluster-outage",
    } <= names
    # Whole-domain outages race autoscaler drains: every scenario scales and
    # most inject correlated domain events.
    assert sum(1 for s in first if s.faults.domain_events) >= len(first) // 2
    # Retry budgets vary, including the zero-budget storm.
    assert {s.faults.retry_budget for s in first} != {0}
    assert any(s.faults.retry_budget == 0 for s in first)
    # Both config-override and constructor topology paths are exercised.
    assert any(s.via_config_override for s in first)
    assert any(not s.via_config_override for s in first)


def test_sweep_passes_all_invariants(services):
    summary = run_chaos_sweep(num_examples=TEST_SWEEP_EXAMPLES, seed=0, services=services)
    assert summary["examples"] == TEST_SWEEP_EXAMPLES
    assert tuple(summary["invariants"]) == INVARIANTS
    totals = summary["totals"]
    assert totals["offered"] == (
        totals["served"] + totals["shed"] + totals["failed"]
    )
    assert totals["offered"] > 0 and totals["served"] > 0
    # The sweep must actually exercise correlated whole-domain outages.
    assert totals["domain_outages"] > 0
    assert len(summary["runs"]) == TEST_SWEEP_EXAMPLES


def test_single_scenario_rows_agree_with_sweep(services):
    scenario = chaos_scenarios(1, seed=0)[0]
    row = run_scenario(services, scenario)
    assert row["scenario"] == scenario.name
    assert row["offered"] == row["served"] + row["shed"] + row["failed"]


def test_violation_writes_reproduction_artifact(services, tmp_path, monkeypatch):
    artifact_path = tmp_path / "chaos_failure.json"

    def broken_check(scenario, report, source, min_shards):
        raise ChaosInvariantError(
            "conservation", scenario.name, "forced for the artifact test",
            scenario.as_dict(),
        )

    monkeypatch.setattr(chaos_module, "_check_run", broken_check)
    with pytest.raises(ChaosInvariantError) as excinfo:
        run_chaos_sweep(
            num_examples=1, seed=0, services=services, artifact_path=artifact_path
        )
    assert excinfo.value.invariant == "conservation"
    artifact = json.loads(artifact_path.read_text())
    assert artifact["invariant"] == "conservation"
    assert artifact["name"] == excinfo.value.scenario
    # The artifact embeds enough to rebuild the failing schedule.
    assert "schedule" in artifact and "provenance" in artifact
