"""Tests for GNN layers, models and embeddings."""

import numpy as np
import pytest

from repro.gnn.embeddings import EmbeddingTable
from repro.gnn.layers import (
    LinearTransform,
    MLPTransform,
    attention_aggregate,
    max_aggregate,
    mean_aggregate,
    sum_aggregate,
)
from repro.gnn.models import GCN, MODEL_REGISTRY, GraphSAGE, build_model
from repro.graph.csc import CSCGraph
from repro.graph.convert import coo_to_csc
from repro.graph.reindex import reindex_edges


@pytest.fixture
def csc():
    # dst 0 <- {1, 2}, dst 1 <- {2}, dst 2 <- {}
    return CSCGraph(indptr=np.array([0, 2, 3, 3]), indices=np.array([1, 2, 2]), num_nodes=3)


@pytest.fixture
def features():
    return np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])


class TestAggregation:
    def test_mean(self, csc, features):
        out = mean_aggregate(csc, features)
        assert np.allclose(out[0], [4.0, 5.0])
        assert np.allclose(out[1], [5.0, 6.0])
        assert np.allclose(out[2], [0.0, 0.0])

    def test_sum(self, csc, features):
        out = sum_aggregate(csc, features)
        assert np.allclose(out[0], [8.0, 10.0])

    def test_max(self, csc, features):
        out = max_aggregate(csc, features)
        assert np.allclose(out[0], [5.0, 6.0])

    def test_attention_weights_sum_to_one(self, csc, features):
        attn_src = np.array([0.5, -0.2, 0.9])
        attn_dst = np.array([0.1, 0.3, 0.0])
        out = attention_aggregate(csc, features, attn_src, attn_dst)
        # The attended embedding of node 0 lies in the convex hull of its
        # neighbours' features.
        assert features[[1, 2], 0].min() <= out[0, 0] <= features[[1, 2], 0].max()


class TestTransforms:
    def test_linear_shapes(self):
        layer = LinearTransform.random(4, 8, seed=0)
        out = layer(np.ones((5, 4)))
        assert out.shape == (5, 8)
        assert np.all(out >= 0)  # ReLU active

    def test_linear_no_activation(self):
        layer = LinearTransform.random(4, 4, seed=1, activation=False)
        out = layer(-np.ones((2, 4)))
        assert out.shape == (2, 4)

    def test_linear_flops(self):
        layer = LinearTransform.random(4, 8)
        assert layer.flops(10) == 2 * 10 * 4 * 8

    def test_mlp(self):
        mlp = MLPTransform.random(4, 16, 8, seed=2)
        out = mlp(np.ones((3, 4)))
        assert out.shape == (3, 8)
        assert mlp.flops(3) == mlp.first.flops(3) + mlp.second.flops(3)


class TestModels:
    @pytest.mark.parametrize("name", ["gin", "graphsage", "gcn", "gat"])
    def test_forward_shapes(self, name, small_graph):
        csc = coo_to_csc(small_graph)
        model = build_model(name, in_dim=8, hidden_dim=8, num_layers=2)
        features = np.random.default_rng(0).normal(size=(csc.num_nodes, 8))
        out = model.forward(csc, features)
        assert out.shape == (csc.num_nodes, 8)
        assert np.all(np.isfinite(out))

    def test_registry_order_by_intensity(self):
        assert list(MODEL_REGISTRY) == ["gin", "graphsage", "gcn", "gat"]
        flops = [MODEL_REGISTRY[m](in_dim=64, hidden_dim=64).flops(1000, 10_000) for m in MODEL_REGISTRY]
        assert flops == sorted(flops)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("transformer")

    def test_flops_scale_with_graph(self):
        model = GraphSAGE(in_dim=32, hidden_dim=32)
        assert model.flops(100, 1000) < model.flops(1000, 10_000)

    def test_deterministic_weights(self, csc, features):
        a = GCN(in_dim=2, hidden_dim=2, seed=5).forward(csc, features)
        b = GCN(in_dim=2, hidden_dim=2, seed=5).forward(csc, features)
        assert np.allclose(a, b)


class TestEmbeddings:
    def test_random_table(self):
        table = EmbeddingTable.random(10, dim=4, seed=0)
        assert table.num_nodes == 10
        assert table.dim == 4
        assert table.nbytes > 0

    def test_lookup(self):
        table = EmbeddingTable(features=np.arange(20, dtype=float).reshape(10, 2))
        rows = table.lookup(np.array([1, 3]))
        assert np.array_equal(rows, [[2, 3], [6, 7]])

    def test_gather_subgraph(self):
        table = EmbeddingTable(features=np.arange(20, dtype=float).reshape(10, 2))
        result = reindex_edges(np.array([4]), np.array([7]))
        sub = table.gather_subgraph(result)
        assert sub.num_nodes == 2
        assert np.array_equal(sub.features[result.mapping[7]], table.features[7])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            EmbeddingTable(features=np.zeros(5))

    def test_zeros(self):
        assert EmbeddingTable.zeros(3, dim=2).features.sum() == 0
