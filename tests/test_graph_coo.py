"""Tests for the COO graph container."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.graph.coo import COOGraph


def make_graph():
    return COOGraph(src=np.array([0, 2, 1, 3]), dst=np.array([1, 0, 1, 2]), num_nodes=4)


class TestConstruction:
    def test_basic_counts(self):
        g = make_graph()
        assert g.num_edges == 4
        assert g.num_nodes == 4
        assert len(g) == 4

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            COOGraph(src=np.array([0, 1]), dst=np.array([0]), num_nodes=2)

    def test_out_of_range_vid_rejected(self):
        with pytest.raises(ValueError):
            COOGraph(src=np.array([0, 5]), dst=np.array([1, 1]), num_nodes=3)

    def test_negative_vid_rejected(self):
        with pytest.raises(ValueError):
            COOGraph(src=np.array([0, -1]), dst=np.array([1, 1]), num_nodes=3)

    def test_negative_node_count_rejected(self):
        with pytest.raises(ValueError):
            COOGraph(src=np.array([], dtype=int), dst=np.array([], dtype=int), num_nodes=-1)

    def test_empty_graph(self):
        g = COOGraph(src=np.array([], dtype=int), dst=np.array([], dtype=int), num_nodes=5)
        assert g.num_edges == 0
        assert g.avg_degree == 0.0
        assert g.is_sorted()

    def test_from_edge_list(self):
        g = COOGraph.from_edge_list([(0, 1), (2, 3)])
        assert g.num_nodes == 4
        assert g.num_edges == 2

    def test_from_empty_edge_list(self):
        g = COOGraph.from_edge_list([])
        assert g.num_nodes == 0
        assert g.num_edges == 0


class TestDegrees:
    def test_in_degrees(self):
        g = make_graph()
        assert g.in_degrees().tolist() == [1, 2, 1, 0]

    def test_out_degrees(self):
        g = make_graph()
        assert g.out_degrees().tolist() == [1, 1, 1, 1]

    def test_max_degree(self):
        assert make_graph().max_degree() == 2

    def test_avg_degree(self):
        assert make_graph().avg_degree == pytest.approx(1.0)


class TestOperations:
    def test_edges_matrix(self):
        edges = make_graph().edges()
        assert edges.shape == (4, 2)
        assert edges[0].tolist() == [0, 1]

    def test_iteration(self):
        pairs = list(make_graph())
        assert pairs[1] == (2, 0)

    def test_copy_is_independent(self):
        g = make_graph()
        c = g.copy()
        c.src[0] = 3
        assert g.src[0] == 0

    def test_add_edges(self):
        g = make_graph()
        bigger = g.add_edges(np.array([0]), np.array([3]))
        assert bigger.num_edges == 5
        assert g.num_edges == 4

    def test_add_edges_with_new_nodes(self):
        g = make_graph()
        bigger = g.add_edges(np.array([4]), np.array([0]), num_nodes=5)
        assert bigger.num_nodes == 5

    def test_subgraph_edges(self):
        g = make_graph()
        sub = g.subgraph_edges(np.array([True, False, True, False]))
        assert sub.num_edges == 2

    def test_nbytes_positive(self):
        assert make_graph().nbytes() > 0

    def test_is_sorted_detection(self):
        unsorted = make_graph()
        assert not unsorted.is_sorted()
        ordered = COOGraph(src=np.array([0, 1]), dst=np.array([0, 1]), num_nodes=2)
        assert ordered.is_sorted()


class TestConcatenation:
    def test_roundtrip(self):
        g = make_graph()
        keys = g.concatenate_vids()
        src, dst = COOGraph.deconcatenate_vids(keys, g.num_nodes)
        assert np.array_equal(src, g.src)
        assert np.array_equal(dst, g.dst)

    def test_sort_order_is_dst_major(self):
        g = make_graph()
        keys = np.sort(g.concatenate_vids())
        src, dst = COOGraph.deconcatenate_vids(keys, g.num_nodes)
        assert np.all(np.diff(dst) >= 0)

    @given(st.integers(2, 500), st.integers(1, 200), st.integers(0, 10_000))
    def test_roundtrip_property(self, num_nodes, num_edges, seed):
        rng = np.random.default_rng(seed)
        src = rng.integers(0, num_nodes, size=num_edges)
        dst = rng.integers(0, num_nodes, size=num_edges)
        g = COOGraph(src=src, dst=dst, num_nodes=num_nodes)
        keys = g.concatenate_vids()
        rsrc, rdst = COOGraph.deconcatenate_vids(keys, num_nodes)
        assert np.array_equal(rsrc, g.src)
        assert np.array_equal(rdst, g.dst)
