"""Fig. 22: impact of hardware reconfiguration (StatPre/DynArea/DynSCR/DynUPE)."""

from repro.core.bitstream import generate_bitstream_library
from repro.core.cost_model import CostModel
from repro.system.variants import tuned_config_for
from repro.system.workload import WorkloadProfile

from common import print_figure, run_once

DATASETS = ["AX", "SO", "AM"]


def reproduce_fig22():
    """Preprocessing cycles (cost-model view) normalised to StatPre.

    StatPre keeps the configuration tuned for MV; DynArea may rebalance the
    area split (the paper finds this brings negligible benefit, which is why
    the 70:30 split is fixed); DynSCR additionally re-optimises the SCR
    width/slot count; DynUPE also re-optimises the UPE configuration.
    """
    library = generate_bitstream_library()
    model = CostModel()
    mv_config = tuned_config_for(WorkloadProfile.from_dataset("MV"), library)
    rows = []
    for key in DATASETS:
        params = WorkloadProfile.from_dataset(key).to_cost_params()
        statpre = model.estimate(params, mv_config).total_cycles
        dyn_area = statpre  # fixed 70:30 split: no extra freedom beyond StatPre
        scr_candidates = [
            library.config_for(upe, scr)
            for upe in library.upe_variants
            for scr in library.scr_variants
            if upe.count == mv_config.num_upes and upe.width == mv_config.upe_width
        ]
        _, dyn_scr_est = model.best_configuration(params, scr_candidates)
        _, dyn_upe_est = model.best_configuration(params, library.configurations())
        rows.append(
            [
                key,
                100.0,
                round(100 * dyn_area / statpre, 1),
                round(100 * dyn_scr_est.total_cycles / statpre, 1),
                round(100 * dyn_upe_est.total_cycles / statpre, 1),
            ]
        )
    return rows


def test_fig22_reconfiguration_ablation(benchmark):
    rows = run_once(benchmark, reproduce_fig22)
    print_figure(
        "Fig. 22: preprocessing latency normalised to StatPre (paper: DynSCR cuts"
        " AX/SO/AM by 23/51/15%, DynUPE a further 13-39%)",
        ["dataset", "StatPre_%", "DynArea_%", "DynSCR_%", "DynUPE_%"],
        rows,
    )
    for row in rows:
        # Each additional reconfiguration degree of freedom must not hurt.
        assert row[2] <= row[1] + 1e-6
        assert row[3] <= row[2] + 1e-6
        assert row[4] <= row[3] + 1e-6
    # At least one dataset benefits substantially from full reconfiguration.
    assert min(row[4] for row in rows) < 90.0
