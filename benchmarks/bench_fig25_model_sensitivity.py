"""Fig. 25: sensitivity to the GNN model, layer count and sampling parameter k."""

from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

from common import print_figure, run_once

MODELS = ["gin", "graphsage", "gcn", "gat"]
LAYERS = [1, 2, 4, 6]
KS = [5, 10, 20, 40]
DATASET = "AM"


def _steady(service, workload):
    service.serve(workload)
    return service.serve(workload)


def reproduce_fig25():
    services = build_services()
    gpu, dyn = services["GPU"], services["DynPre"]

    model_rows = []
    for model in MODELS:
        w = WorkloadProfile.from_dataset(DATASET, model_name=model)
        g = _steady(gpu, w)
        d = _steady(dyn, w)
        model_rows.append(
            [
                model,
                round(g.total_seconds * 1e3, 1),
                round(d.total_seconds * 1e3, 1),
                round(g.total_seconds / d.total_seconds, 2),
                round(100 * d.preprocessing_share, 1),
            ]
        )

    layer_rows = []
    for layers in LAYERS:
        w = WorkloadProfile.from_dataset(DATASET, num_layers=layers)
        g = _steady(gpu, w)
        d = _steady(dyn, w)
        layer_rows.append(
            [layers, round(g.total_seconds * 1e3, 1), round(d.total_seconds * 1e3, 1),
             round(g.total_seconds / d.total_seconds, 2)]
        )

    k_rows = []
    for k in KS:
        w = WorkloadProfile.from_dataset(DATASET, k=k)
        g = _steady(gpu, w)
        d = _steady(dyn, w)
        k_rows.append(
            [k, round(g.total_seconds * 1e3, 1), round(d.total_seconds * 1e3, 1),
             round(g.total_seconds / d.total_seconds, 2)]
        )
    return model_rows, layer_rows, k_rows


def test_fig25_model_sensitivity(benchmark):
    model_rows, layer_rows, k_rows = run_once(benchmark, reproduce_fig25)
    print_figure(
        "Fig. 25a (AM): GNN model sweep (paper: even GAT keeps preprocessing at 51%,"
        " DynPre 1.67x over GPU)",
        ["model", "GPU_ms", "DynPre_ms", "speedup", "DynPre_preproc_%"],
        model_rows,
    )
    print_figure(
        "Fig. 25b (AM): layer-count sweep (paper: speedup grows 3.7x -> 4.5x)",
        ["layers", "GPU_ms", "DynPre_ms", "speedup"],
        layer_rows,
    )
    print_figure(
        "Fig. 25c (AM): sampling-k sweep (paper: DynPre reaches 2.6x at large k)",
        ["k", "GPU_ms", "DynPre_ms", "speedup"],
        k_rows,
    )
    # More complex models shrink the preprocessing share and the relative gain.
    speedups = [row[3] for row in model_rows]
    assert speedups[0] >= speedups[-1]
    assert all(s > 1.0 for s in speedups)
    # Latency rises with layer count and with k for both systems.
    assert layer_rows[-1][1] > layer_rows[0][1]
    assert layer_rows[-1][2] > layer_rows[0][2]
    assert k_rows[-1][1] > k_rows[0][1]
