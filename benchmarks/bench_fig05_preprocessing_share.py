"""Fig. 5: share of GNN preprocessing in end-to-end service latency."""

from repro.system.service import GNNService
from repro.baselines.gpu import GPUPreprocessingSystem

from common import all_workloads, print_figure, run_once


def reproduce_fig5():
    """Preprocessing vs inference share per dataset (GPU-accelerated DGL)."""
    service = GNNService(GPUPreprocessingSystem())
    rows = []
    shares = []
    for key, workload in all_workloads().items():
        report = service.serve(workload)
        share = report.preprocessing_share
        shares.append(share)
        rows.append(
            [
                key,
                round(100 * share, 1),
                round(100 * (1 - share), 1),
                round(report.total_seconds * 1e3, 2),
            ]
        )
    rows.append(["avg", round(100 * sum(shares) / len(shares), 1), "", ""])
    return rows


def test_fig05_preprocessing_share(benchmark):
    rows = run_once(benchmark, reproduce_fig5)
    print_figure(
        "Fig. 5: GNN preprocessing overhead (GPU baseline; paper avg ~70%, up to ~90%)",
        ["dataset", "preprocess_%", "inference_%", "total_ms"],
        rows,
    )
    shares = {row[0]: row[1] for row in rows[:-1]}
    # Preprocessing dominates and its share grows with graph size.
    assert shares["TB"] > shares["PH"]
    assert all(share > 50.0 for share in shares.values())
    avg = rows[-1][1]
    assert 60.0 <= avg <= 95.0
