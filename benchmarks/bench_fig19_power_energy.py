"""Fig. 19: power draw and end-to-end energy, AutoGNN vs GPU."""

from repro.system.power import FPGA_PREPROCESS_WATTS, GPU_PREPROCESS_WATTS, power_ratio
from repro.system.service import build_services

from common import all_workloads, print_figure, run_once


def reproduce_fig19():
    """Preprocessing power and per-pass energy for GPU and DynPre."""
    services = build_services()
    rows = []
    ratios = []
    for key, workload in all_workloads().items():
        gpu = services["GPU"].serve(workload)
        services["DynPre"].serve(workload)
        dyn = services["DynPre"].serve(workload)
        ratio = gpu.energy.total_joules / dyn.energy.total_joules
        ratios.append(ratio)
        rows.append(
            [
                key,
                round(gpu.energy.preprocessing_watts, 1),
                round(dyn.energy.preprocessing_watts, 1),
                round(gpu.energy.total_joules, 2),
                round(dyn.energy.total_joules, 2),
                round(ratio, 2),
            ]
        )
    rows.append(["avg", "", "", "", "", round(sum(ratios) / len(ratios), 2)])
    return rows


def test_fig19_power_and_energy(benchmark):
    rows = run_once(benchmark, reproduce_fig19)
    print_figure(
        "Fig. 19: power and energy (paper: 19.7x lower preprocessing power,"
        " 3.3x lower end-to-end energy)",
        ["dataset", "GPU_W", "AutoGNN_W", "GPU_J", "DynPre_J", "energy_ratio"],
        rows,
    )
    assert power_ratio() > 15.0
    assert GPU_PREPROCESS_WATTS / FPGA_PREPROCESS_WATTS > 15.0
    avg_ratio = rows[-1][-1]
    assert 1.5 <= avg_ratio <= 15.0
