"""Fig. 31: concurrent inference over mixed edges from two graphs."""

from repro.core.bitstream import generate_bitstream_library
from repro.system.variants import DynPreSystem, StatPreSystem, tuned_config_for
from repro.system.workload import WorkloadProfile

from common import print_figure, run_once

#: Same-category and cross-category mixes (the paper mixes edges from graphs
#: within one domain and across domains).
SAME_CATEGORY_MIXES = [("AX", "CL"), ("SO", "JR"), ("YL", "FR")]
CROSS_CATEGORY_MIXES = [("AX", "TB"), ("PH", "AM"), ("MV", "SO")]


def _mixed_workload(a: str, b: str) -> WorkloadProfile:
    """A workload whose edges are the union of two datasets' edges."""
    wa = WorkloadProfile.from_dataset(a)
    wb = WorkloadProfile.from_dataset(b)
    return WorkloadProfile(
        name=f"{a}+{b}",
        num_nodes=wa.num_nodes + wb.num_nodes,
        num_edges=wa.num_edges + wb.num_edges,
        avg_degree=(wa.num_edges + wb.num_edges) / max(wa.num_nodes + wb.num_nodes, 1),
        batch_size=wa.batch_size + wb.batch_size,
    )


def reproduce_fig31():
    library = generate_bitstream_library()
    mv_config = tuned_config_for(WorkloadProfile.from_dataset("MV"), library)
    rows = []
    for label, mixes in (("same", SAME_CATEGORY_MIXES), ("cross", CROSS_CATEGORY_MIXES)):
        for a, b in mixes:
            workload = _mixed_workload(a, b)
            stat = StatPreSystem(config=mv_config)
            dyn = DynPreSystem(library=library, config=mv_config)
            stat_latency = stat.evaluate(workload).preprocessing.total
            dyn.evaluate(workload)  # reconfigure for the mix
            dyn_latency = dyn.evaluate(workload).preprocessing.total
            rows.append(
                [
                    f"{a}+{b}",
                    label,
                    round(stat_latency * 1e3, 2),
                    round(dyn_latency * 1e3, 2),
                    round(100 * (1 - dyn_latency / stat_latency), 1),
                ]
            )
    return rows


def test_fig31_mixed_edges(benchmark):
    rows = run_once(benchmark, reproduce_fig31)
    print_figure(
        "Fig. 31: mixed-edge preprocessing latency, StatPre vs DynPre (paper:"
        " DynPre cuts same-category mixes by 98.9% and cross-category by 74.1%)",
        ["mix", "category", "StatPre_ms", "DynPre_ms", "reduction_%"],
        rows,
    )
    # DynPre never loses to the fixed MV-tuned configuration on mixed inputs.
    assert all(row[4] >= -0.1 for row in rows)
