"""Serving-throughput benchmark: sharded clusters under open-loop traffic.

Drives one fixed Poisson request trace (a mix of Table II workloads) through
``ShardedServiceCluster`` instances of increasing shard count and records
throughput, p50/p95/p99 sojourn latency, the queueing-delay decomposition
and per-shard utilisation.  A second section compares all seven systems of
Fig. 18 (CPU / GPU / GSamp / FPGA / AutoPre / StatPre / DynPre) on the same
trace at a fixed shard count, which is the served-traffic extension of the
paper's end-to-end figures.

Results are written to ``BENCH_serving_throughput.json`` at the repo root.
The scaling gate — >= 2x throughput for 4 shards over 1 shard on the same
trace — is enforced by the exit code (and by the pytest-benchmark entry), so
CI fails if cluster scaling regresses.

Run standalone (``--quick`` trims the trace and skips the 8-shard point) or
through pytest-benchmark like the figure benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.report import format_distribution
from repro.serving import (
    BatchScheduler,
    BurstyArrivals,
    OpenLoopArrivals,
    POLICY_LEAST_LOADED,
    RequestTrace,
    ShardedServiceCluster,
    merge_traces,
)
from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

#: Output path of the machine-readable results (repo root, tracked by PRs).
RESULT_PATH = REPO_ROOT / "BENCH_serving_throughput.json"

#: Committed capture replayed every run for cross-PR A/B comparisons: the
#: trace bytes are fixed in git, so the ``replay`` section of the results
#: compares system-to-system across PRs on *identical* traffic.  Regenerate
#: (a deliberate comparability break) with ``--regen-trace``.
REPLAY_TRACE_PATH = REPO_ROOT / "benchmarks" / "traces" / "serving_replay.jsonl"

#: Workload mix of the trace (small / medium / the paper's tuning dataset).
TRACE_DATASETS = ("PH", "AX", "MV")

#: Offered load of the open-loop trace (requests/second).  High enough to
#: saturate every shard count measured, so throughput reflects capacity.
OFFERED_RATE_RPS = 500.0

#: Scheduler settings: coalesce up to 4 compatible requests, waiting at most
#: 5 ms for companions.
MAX_BATCH_SIZE = 4
MAX_WAIT_SECONDS = 0.005

#: The acceptance gate: 4 shards must deliver at least this multiple of the
#: 1-shard throughput on the same trace.
MIN_SPEEDUP_4_VS_1 = 2.0

#: Shard counts of the scaling sweep (8 is skipped in quick mode).
SHARD_COUNTS = (1, 2, 4, 8)

SEED = 1


def _trace(num_requests: int):
    mix = [WorkloadProfile.from_dataset(key) for key in TRACE_DATASETS]
    return OpenLoopArrivals(mix, rate_rps=OFFERED_RATE_RPS, seed=SEED).trace(num_requests)


def _generate_replay_trace() -> RequestTrace:
    """The canonical replay capture: 400 bursty requests from three tenants."""
    mix = [WorkloadProfile.from_dataset(key) for key in TRACE_DATASETS]
    tenants = (("free", 0.5, 0.0), ("pro", 0.25, 0.2), ("ent", 0.25, 0.35))
    streams = [
        BurstyArrivals(
            mix,
            base_rate_rps=0.4 * share * OFFERED_RATE_RPS,
            peak_rate_rps=2.8 * share * OFFERED_RATE_RPS,
            period_seconds=0.5,
            burst_fraction=0.25,
            phase_seconds=phase,
            tenant=tenant,
            seed=SEED + i,
        )
        for i, (tenant, share, phase) in enumerate(tenants)
    ]
    budgets = (200, 100, 100)
    return merge_traces(
        [stream.trace(budget) for stream, budget in zip(streams, budgets)]
    )


def _replay_section(services, scheduler) -> Dict:
    """Serve the committed replay capture on DynPre x1/x4 (cross-PR A/B)."""
    trace = RequestTrace.from_jsonl(REPLAY_TRACE_PATH)
    entries = []
    for num_shards in (1, 4):
        cluster = ShardedServiceCluster(
            services["DynPre"],
            num_shards=num_shards,
            scheduler=scheduler,
            policy=POLICY_LEAST_LOADED,
        )
        report = cluster.serve_trace(trace)
        entries.append(_cluster_entry(report))
        print(
            f"replay DynPre x{num_shards}: {report.throughput_rps:8.1f} rps | "
            f"p99 {report.latency.p99 * 1e3:9.1f} ms"
        )
    return {
        "trace_file": str(REPLAY_TRACE_PATH.relative_to(REPO_ROOT)),
        "num_requests": len(trace),
        "offered_rate_rps": round(trace.offered_rate_rps, 3),
        "tenants": trace.tenants(),
        "results": entries,
    }


def _cluster_entry(report) -> Dict:
    latency = report.latency
    return {
        "system": report.system,
        "policy": report.policy,
        "num_shards": report.num_shards,
        "num_requests": report.num_requests,
        "num_batches": report.num_batches,
        "throughput_rps": round(report.throughput_rps, 3),
        "makespan_seconds": round(report.makespan_seconds, 6),
        "latency_seconds": {
            "p50": round(latency.p50, 6),
            "p95": round(latency.p95, 6),
            "p99": round(latency.p99, 6),
            "mean": round(latency.mean, 6),
        },
        "queueing_decomposition_seconds": {
            key: round(value, 6)
            for key, value in report.queueing_decomposition.items()
        },
        "shard_utilization": [round(u, 4) for u in report.shard_utilization],
    }


def run(quick: bool = False) -> Dict:
    """Execute the benchmark and return (and persist) the result document."""
    started = time.perf_counter()
    num_requests = 120 if quick else 240
    trace = _trace(num_requests)
    scheduler = BatchScheduler(
        max_batch_size=MAX_BATCH_SIZE, max_wait_seconds=MAX_WAIT_SECONDS
    )
    services = build_services()

    # ------------------------------------------------- shard-count scaling
    scaling: List[Dict] = []
    throughput_by_shards: Dict[int, float] = {}
    stats_by_label = {}
    for num_shards in SHARD_COUNTS:
        if quick and num_shards > 4:
            continue
        cluster = ShardedServiceCluster(
            services["DynPre"],
            num_shards=num_shards,
            scheduler=scheduler,
            policy=POLICY_LEAST_LOADED,
        )
        report = cluster.serve_trace(trace)
        throughput_by_shards[num_shards] = report.throughput_rps
        scaling.append(_cluster_entry(report))
        stats_by_label[f"DynPre x{num_shards}"] = report.latency
        print(
            f"DynPre x{num_shards}: {report.throughput_rps:8.1f} rps | "
            f"p50 {report.latency.p50 * 1e3:8.1f} ms | "
            f"p99 {report.latency.p99 * 1e3:8.1f} ms | "
            f"util {min(report.shard_utilization):.2f}-{max(report.shard_utilization):.2f}"
        )
    speedup_4_vs_1 = throughput_by_shards[4] / max(throughput_by_shards[1], 1e-12)
    print(f"\n4-shard vs 1-shard throughput: {speedup_4_vs_1:.2f}x "
          f"(gate >= {MIN_SPEEDUP_4_VS_1:.1f}x)")

    # --------------------------------------------- all seven systems, 4 shards
    systems: List[Dict] = []
    for name, service in services.items():
        cluster = ShardedServiceCluster(
            service, num_shards=4, scheduler=scheduler, policy=POLICY_LEAST_LOADED
        )
        report = cluster.serve_trace(trace)
        systems.append(_cluster_entry(report))
        print(
            f"{name:>8} x4: {report.throughput_rps:8.1f} rps | "
            f"p99 {report.latency.p99 * 1e3:9.1f} ms"
        )

    # -------------------------------- committed-trace replay (cross-PR A/B)
    replay = _replay_section(services, scheduler)

    print("\n" + format_distribution("DynPre sojourn latency by shard count (s)",
                                     stats_by_label))

    document = {
        "benchmark": "serving_throughput",
        "_provenance": (
            "simulated metrics from ShardedServiceCluster.serve_trace (engine-"
            "independent); wall_clock_seconds is this script's total runtime on "
            "the committing machine. Regenerate with "
            "`python benchmarks/bench_serving_throughput.py`."
        ),
        "quick": bool(quick),
        "trace": {
            "datasets": list(TRACE_DATASETS),
            "num_requests": num_requests,
            "offered_rate_rps": OFFERED_RATE_RPS,
            "process": "poisson",
            "seed": SEED,
        },
        "scheduler": {
            "max_batch_size": MAX_BATCH_SIZE,
            "max_wait_seconds": MAX_WAIT_SECONDS,
        },
        "scaling": scaling,
        "speedup_4_vs_1": round(speedup_4_vs_1, 3),
        "systems_4_shards": systems,
        "replay": replay,
        "wall_clock_seconds": round(time.perf_counter() - started, 4),
    }
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(f"\nresults written to {RESULT_PATH}")
    return document


def test_serving_throughput(benchmark):
    """Pytest-benchmark entry point with the scaling acceptance gate."""
    from common import run_once

    document = run_once(benchmark, lambda: run(quick=True))
    assert document["speedup_4_vs_1"] >= MIN_SPEEDUP_4_VS_1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="shorter trace, skip the 8-shard point (CI mode)",
    )
    parser.add_argument(
        "--regen-trace", action="store_true",
        help="rewrite the committed replay capture (breaks cross-PR "
             "comparability of the replay section on purpose)",
    )
    args = parser.parse_args(argv)
    if args.regen_trace:
        REPLAY_TRACE_PATH.parent.mkdir(parents=True, exist_ok=True)
        path = _generate_replay_trace().to_jsonl(REPLAY_TRACE_PATH)
        print(f"wrote {path}")
        return 0
    document = run(quick=args.quick)
    if document["speedup_4_vs_1"] < MIN_SPEEDUP_4_VS_1:
        print(
            f"SCALING REGRESSION: 4-shard speedup {document['speedup_4_vs_1']:.2f}x "
            f"< {MIN_SPEEDUP_4_VS_1:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
