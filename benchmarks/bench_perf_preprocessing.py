"""Scaling microbenchmark: reference vs. vectorized preprocessing pipeline.

Times the end-to-end functional preprocessing pipeline (edge ordering, data
reshaping, unique random selection, subgraph reindexing, subgraph conversion)
in both execution modes on synthetic power-law graphs of increasing size, and
verifies the fast-path contract along the way: bit-exact reindexing output and
identical cycle counts between modes (see DESIGN.md).

Results are written to ``BENCH_perf_preprocessing.json`` at the repo root so
future PRs have a machine-readable perf trajectory.

Run standalone (``--quick`` skips the 1M-edge scale, for CI) or through
pytest-benchmark like the figure benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.core.accelerator import AutoGNNDevice
from repro.graph.generators import GraphSpec, power_law_graph
from repro.graph.sampling import MODE_REFERENCE, MODE_VECTORIZED
from repro.preprocessing.pipeline import PreprocessingConfig, preprocess

#: Output path of the machine-readable results (repo root, tracked by PRs).
RESULT_PATH = REPO_ROOT / "BENCH_perf_preprocessing.json"

#: Benchmark scales: (label, nodes, edges, batch size).  The 100k-edge scale
#: is the acceptance gate (>= 10x vectorized speedup); the 1M-edge scale
#: documents the trajectory and is skipped in quick mode.
SCALES = [
    ("10k", 2_000, 10_000, 1_000),
    ("100k", 20_000, 100_000, 3_000),
    ("1m", 200_000, 1_000_000, 3_000),
]

#: Cycle-identity verification runs the reference-mode cycle simulator too,
#: so it is limited to scales at or below this edge count.
CYCLE_CHECK_MAX_EDGES = 100_000

#: Workload parameters shared by every scale.
K = 10
NUM_LAYERS = 2
SEED = 0


def _time_pipeline(graph, batch_size: int, mode: str, repeats: int = 5) -> float:
    """Minimum wall time of ``repeats`` pipeline passes.

    The minimum is the standard noise-robust estimator (scheduling jitter
    only ever adds time) and is applied to both modes symmetrically.
    """
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        preprocess(
            graph,
            k=K,
            num_layers=NUM_LAYERS,
            batch_size=batch_size,
            seed=SEED,
            mode=mode,
        )
        times.append(time.perf_counter() - start)
    return min(times)


def _check_equivalence(graph, batch_size: int) -> Dict[str, bool]:
    """Bit-exactness and cycle-identity checks between the two modes."""
    ref = preprocess(graph, k=K, num_layers=NUM_LAYERS, batch_size=batch_size, seed=SEED,
                     mode=MODE_REFERENCE)
    vec = preprocess(graph, k=K, num_layers=NUM_LAYERS, batch_size=batch_size, seed=SEED,
                     mode=MODE_VECTORIZED)
    bit_exact = (
        ref.reindex.mapping == vec.reindex.mapping
        and np.array_equal(ref.reindex.edges.src, vec.reindex.edges.src)
        and np.array_equal(ref.reindex.edges.dst, vec.reindex.edges.dst)
        and np.array_equal(ref.reindex.original_vids, vec.reindex.original_vids)
        and np.array_equal(ref.subgraph_csc.indptr, vec.subgraph_csc.indptr)
        and np.array_equal(ref.subgraph_csc.indices, vec.subgraph_csc.indices)
    )
    workload = PreprocessingConfig(k=K, num_layers=NUM_LAYERS, batch_size=batch_size, seed=SEED)
    ref_dev = AutoGNNDevice(mode=MODE_REFERENCE).preprocess(graph, workload)
    vec_dev = AutoGNNDevice(mode=MODE_VECTORIZED).preprocess(graph, workload)
    cycles_identical = ref_dev.timing.breakdown() == vec_dev.timing.breakdown()
    return {
        "bit_exact": bool(bit_exact),
        "cycles_identical": bool(cycles_identical),
        "total_cycles": int(vec_dev.timing.total_cycles),
    }


def run(quick: bool = False) -> Dict:
    """Execute the benchmark and return (and persist) the result document."""
    results: List[Dict] = []
    for label, num_nodes, num_edges, batch_size in SCALES:
        if quick and num_edges > 100_000:
            continue
        graph = power_law_graph(
            GraphSpec(num_nodes=num_nodes, num_edges=num_edges, degree_skew=0.5, seed=42)
        )
        vectorized_seconds = _time_pipeline(graph, batch_size, MODE_VECTORIZED)
        reference_seconds = _time_pipeline(graph, batch_size, MODE_REFERENCE)
        entry = {
            "scale": label,
            "num_nodes": num_nodes,
            "num_edges": num_edges,
            "batch_size": batch_size,
            "k": K,
            "num_layers": NUM_LAYERS,
            "reference_seconds": round(reference_seconds, 6),
            "vectorized_seconds": round(vectorized_seconds, 6),
            "speedup": round(reference_seconds / max(vectorized_seconds, 1e-12), 2),
        }
        if num_edges <= CYCLE_CHECK_MAX_EDGES:
            entry.update(_check_equivalence(graph, batch_size))
        results.append(entry)
        print(
            f"{label:>5}: reference {reference_seconds * 1e3:9.1f} ms | "
            f"vectorized {vectorized_seconds * 1e3:8.1f} ms | "
            f"speedup {entry['speedup']:7.1f}x"
            + (
                f" | bit_exact={entry['bit_exact']} cycles_identical={entry['cycles_identical']}"
                if "bit_exact" in entry
                else ""
            )
        )

    document = {
        "benchmark": "perf_preprocessing",
        "quick": bool(quick),
        "results": results,
    }
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(f"\nresults written to {RESULT_PATH}")
    return document


def test_perf_preprocessing(benchmark):
    """Pytest-benchmark entry point (quick scales) with the acceptance gates."""
    from common import run_once

    document = run_once(benchmark, lambda: run(quick=True))
    by_scale = {entry["scale"]: entry for entry in document["results"]}
    assert by_scale["100k"]["bit_exact"]
    assert by_scale["100k"]["cycles_identical"]
    assert by_scale["100k"]["speedup"] >= 10.0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="skip the 1M-edge scale (CI mode)"
    )
    args = parser.parse_args(argv)
    document = run(quick=args.quick)
    failures = [
        entry["scale"]
        for entry in document["results"]
        if not entry.get("bit_exact", True) or not entry.get("cycles_identical", True)
    ]
    if failures:
        print(f"EQUIVALENCE FAILURE at scales: {failures}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
