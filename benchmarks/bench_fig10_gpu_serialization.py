"""Fig. 10: serialized-computation analysis of GPU set-partition/set-count kernels."""

from repro.baselines.gpu import GPUSerializationAnalysis

from common import all_workloads, print_figure, run_once


def reproduce_fig10():
    """Serialized fraction and serial-task split per dataset, plus the average."""
    analysis = GPUSerializationAnalysis()
    rows = []
    totals = {"serialized_fraction": 0.0, "selecting": 0.0, "reshaping": 0.0, "reindexing": 0.0, "bw": 0.0}
    workloads = all_workloads()
    for key, workload in workloads.items():
        result = analysis.analyze(workload)
        rows.append(
            [
                key,
                round(100 * result["serialized_fraction"], 1),
                round(result["serial_share_selecting"], 1),
                round(result["serial_share_reshaping"], 1),
                round(result["serial_share_reindexing"], 1),
                round(100 * result["bandwidth_utilization"], 1),
            ]
        )
        totals["serialized_fraction"] += result["serialized_fraction"]
        totals["selecting"] += result["serial_share_selecting"]
        totals["reshaping"] += result["serial_share_reshaping"]
        totals["reindexing"] += result["serial_share_reindexing"]
        totals["bw"] += result["bandwidth_utilization"]
    n = len(workloads)
    rows.append(
        [
            "avg",
            round(100 * totals["serialized_fraction"] / n, 1),
            round(totals["selecting"] / n, 1),
            round(totals["reshaping"] / n, 1),
            round(totals["reindexing"] / n, 1),
            round(100 * totals["bw"] / n, 1),
        ]
    )
    return rows


def test_fig10_gpu_serialization(benchmark):
    rows = run_once(benchmark, reproduce_fig10)
    print_figure(
        "Fig. 10: GPU serialized execution (paper: 64.1% serialized; serial split"
        " 27.9/41/31.1% selecting/reshaping/reindexing; 30.3% bandwidth utilisation)",
        ["dataset", "serialized_%", "serial_selecting_%", "serial_reshaping_%",
         "serial_reindexing_%", "mem_bw_util_%"],
        rows,
    )
    avg = rows[-1]
    # A majority of the execution stays serialized on the GPU, and all three
    # non-parallelizable tasks contribute a meaningful share.
    assert 40.0 <= avg[1] <= 90.0
    assert all(10.0 <= avg[i] <= 70.0 for i in (2, 3, 4))
