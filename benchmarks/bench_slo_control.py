"""SLO-control benchmark: goodput under 2x overload, with vs without control.

Drives a co-simulated closed-loop client population (arrivals fed by actual
completion times, shed requests retried after a backoff) through two DynPre
clusters under identical traffic parameters:

* **uncontrolled** — every shard active from the start, no admission
  control: the backlog grows with the client population and most sojourns
  blow through the SLO.
* **controlled** — the serving control plane of ``repro.serving.control``:
  predictive admission sheds requests whose predicted sojourn would violate
  the SLO, and a queue-depth autoscaler grows the active shard set with
  hysteresis and bitstream warm-up penalties.

The client population is sized to offer roughly twice the concurrency the
cluster can serve within the SLO, so the uncontrolled run saturates and its
goodput (SLO-met requests per second) collapses while its raw throughput
stays high — exactly the regime the paper's preprocessing-bound serving
story cares about.

Results are written to ``BENCH_slo_control.json`` at the repo root.  The
acceptance gate — controlled goodput >= 1.5x uncontrolled goodput — is
enforced by the exit code (and the pytest-benchmark entry), so CI fails if
the control plane regresses.

Run standalone (``--quick`` trims the request budget) or through
pytest-benchmark like the figure benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.report import format_distribution, format_timeline
from repro.serving import (
    Autoscaler,
    BatchScheduler,
    ClosedLoopClients,
    ServingController,
    ShardedServiceCluster,
    SLOPolicy,
)
from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

#: Output path of the machine-readable results (repo root, tracked by PRs).
RESULT_PATH = REPO_ROOT / "BENCH_slo_control.json"

#: Workload mix of the traffic (same Table II mix as the throughput bench).
TRACE_DATASETS = ("PH", "AX", "MV")

#: Scheduler settings shared by both runs.
MAX_BATCH_SIZE = 4
MAX_WAIT_SECONDS = 0.005

#: Shard count of both clusters (the controlled run autoscales within it).
NUM_SHARDS = 4

#: The SLO, as a multiple of the mean single-request cost estimate.
SLO_COST_MULTIPLE = 3.0

#: Offered concurrency, as a multiple of what fits within the SLO (2x = the
#: overload regime the acceptance gate is defined on).
OVERLOAD_FACTOR = 2.0

#: The acceptance gate: controlled goodput must be at least this multiple of
#: the uncontrolled goodput on identical traffic parameters.
MIN_GOODPUT_RATIO = 1.5

SEED = 7


def _mix() -> List[WorkloadProfile]:
    return [WorkloadProfile.from_dataset(key) for key in TRACE_DATASETS]


def _entry(report) -> Dict:
    latency = report.latency
    goodput = report.goodput
    return {
        "system": report.system,
        "policy": report.policy,
        "num_shards": report.num_shards,
        "num_batches": report.num_batches,
        "makespan_seconds": round(report.makespan_seconds, 6),
        "throughput_rps": round(report.throughput_rps, 3),
        "goodput_rps": round(goodput.goodput_rps, 3),
        "offered": goodput.offered,
        "served": goodput.served,
        "shed": goodput.shed,
        "shed_rate": round(goodput.shed_rate, 4),
        "slo_attainment": round(goodput.slo_attainment, 4),
        "latency_seconds": {
            "p50": round(latency.p50, 6),
            "p95": round(latency.p95, 6),
            "p99": round(latency.p99, 6),
            "mean": round(latency.mean, 6),
        },
        "scaling_timeline": [
            [round(event.seconds, 6), event.active_shards, event.reason]
            for event in report.scaling_timeline
        ],
    }


def run(quick: bool = False) -> Dict:
    """Execute the benchmark and return (and persist) the result document."""
    started = time.perf_counter()
    mix = _mix()
    services = build_services()
    template = services["DynPre"]
    scheduler = BatchScheduler(
        max_batch_size=MAX_BATCH_SIZE, max_wait_seconds=MAX_WAIT_SECONDS
    )

    # ---------------------------------------------------- traffic calibration
    # Mean per-request cost (estimates are side-effect free) prices the SLO;
    # the merged-batch cost prices the cluster's SLO-bounded concurrency,
    # from which the 2x-overload client population follows.
    mean_cost = sum(template.estimate_service_seconds(w) for w in mix) / len(mix)
    batch_cost = sum(
        template.estimate_service_seconds(w.with_batch_size(w.batch_size * MAX_BATCH_SIZE))
        for w in mix
    ) / len(mix)
    slo_seconds = SLO_COST_MULTIPLE * mean_cost
    capacity_rps = NUM_SHARDS * MAX_BATCH_SIZE / batch_cost
    num_clients = max(int(round(OVERLOAD_FACTOR * capacity_rps * slo_seconds)), 2)
    # The budget must comfortably exceed the client population, or the run
    # ends before the closed loop (and the autoscaler) reaches steady state.
    max_requests = num_clients * (2 if quick else 5)
    retry_backoff = slo_seconds / 2.0
    slo = SLOPolicy(default_slo_seconds=slo_seconds)
    print(
        f"mean cost {mean_cost * 1e3:.1f} ms | SLO {slo_seconds * 1e3:.1f} ms | "
        f"capacity ~{capacity_rps:.0f} rps | {num_clients} closed-loop clients "
        f"({OVERLOAD_FACTOR:.0f}x overload) | {max_requests} requests"
    )

    def clients() -> ClosedLoopClients:
        return ClosedLoopClients(
            mix,
            num_clients=num_clients,
            think_seconds=0.0,
            seed=SEED,
            max_requests=max_requests,
            retry_backoff_seconds=retry_backoff,
        )

    # -------------------------------------------------------- the two runs
    uncontrolled_cluster = ShardedServiceCluster(
        template, num_shards=NUM_SHARDS, scheduler=scheduler
    )
    uncontrolled = uncontrolled_cluster.serve_online(clients(), slo=slo)

    controlled_cluster = ShardedServiceCluster(
        template, num_shards=NUM_SHARDS, scheduler=scheduler
    )
    autoscaler = Autoscaler(
        min_shards=1,
        max_shards=NUM_SHARDS,
        scale_up_depth=2.0 * MAX_BATCH_SIZE,
        scale_down_depth=0.5 * MAX_BATCH_SIZE,
        hysteresis_observations=3,
    )
    controlled = ServingController(
        controlled_cluster, slo=slo, autoscaler=autoscaler
    ).serve(clients())

    stats_by_label = {
        "uncontrolled": uncontrolled.latency,
        "controlled": controlled.latency,
    }
    for label, report in (("uncontrolled", uncontrolled), ("controlled", controlled)):
        goodput = report.goodput
        print(
            f"{label:>12}: goodput {goodput.goodput_rps:7.1f} rps | "
            f"throughput {report.throughput_rps:7.1f} rps | "
            f"shed {goodput.shed_rate * 100:5.1f}% | "
            f"SLO attainment {goodput.slo_attainment * 100:5.1f}%"
        )

    goodput_ratio = controlled.goodput_rps / max(uncontrolled.goodput_rps, 1e-12)
    print(f"\ncontrolled vs uncontrolled goodput: {goodput_ratio:.2f}x "
          f"(gate >= {MIN_GOODPUT_RATIO:.1f}x)")
    print("\n" + format_distribution("sojourn latency (s)", stats_by_label))
    print("\n" + format_timeline("controlled-run scaling timeline",
                                 controlled.scaling_timeline))

    document = {
        "benchmark": "slo_control",
        "_provenance": (
            "simulated metrics from ShardedServiceCluster.serve_online (engine-"
            "independent); wall_clock_seconds is this script's total runtime on "
            "the committing machine. Regenerate with "
            "`python benchmarks/bench_slo_control.py`."
        ),
        "quick": bool(quick),
        "traffic": {
            "datasets": list(TRACE_DATASETS),
            "num_clients": num_clients,
            "max_requests": max_requests,
            "think_seconds": 0.0,
            "retry_backoff_seconds": round(retry_backoff, 6),
            "seed": SEED,
            "overload_factor": OVERLOAD_FACTOR,
        },
        "scheduler": {
            "max_batch_size": MAX_BATCH_SIZE,
            "max_wait_seconds": MAX_WAIT_SECONDS,
        },
        "slo_seconds": round(slo_seconds, 6),
        "capacity_estimate_rps": round(capacity_rps, 3),
        "uncontrolled": _entry(uncontrolled),
        "controlled": _entry(controlled),
        "goodput_ratio": round(goodput_ratio, 3),
        "min_goodput_ratio": MIN_GOODPUT_RATIO,
        "wall_clock_seconds": round(time.perf_counter() - started, 4),
    }
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(f"\nresults written to {RESULT_PATH}")
    return document


def test_slo_control(benchmark):
    """Pytest-benchmark entry point with the goodput acceptance gate."""
    from common import run_once

    document = run_once(benchmark, lambda: run(quick=True))
    assert document["goodput_ratio"] >= MIN_GOODPUT_RATIO


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller request budget (CI mode)",
    )
    args = parser.parse_args(argv)
    document = run(quick=args.quick)
    if document["goodput_ratio"] < MIN_GOODPUT_RATIO:
        print(
            f"CONTROL REGRESSION: goodput ratio {document['goodput_ratio']:.2f}x "
            f"< {MIN_GOODPUT_RATIO:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
