"""Elastic-scaling benchmark: voluntary scale-down with vs without drain.

A 2-shard CPU cluster under locality dispatch serves repeated flash
crowds: each cycle opens with a burst (queue depth crosses the scale-up
band, the second shard activates), drains into a trough (depth falls
below the scale-down band while the second shard still holds queued and
in-flight work), then the next crowd reactivates the shard.  The
workload's locality home is the shard the autoscaler deactivates, so
every scale-down decision lands on a shard with work on it — the exact
stranding scenario of the drain-and-migrate fix.

Both runs see the identical trace and the identical autoscaler bands;
only ``Autoscaler(drain=...)`` differs:

* **drain-less** (the old behaviour) — scale-down just shrinks the
  active set.  Queued work stays glued to the deactivated shard's
  horizon, so the trough trickle waits behind the whole stranded crowd
  (SLO misses), the next crowd rejoins a shard still digesting the last
  one, and the shard's lease keeps billing until the backlog clears.
* **drain-aware** (the fix) — scale-down cancels the leaving shard's
  planned-but-unstarted batches and re-dispatches them among the
  survivors; in-flight work runs to completion.  The trough trickle is
  served promptly by the surviving shard and the reactivated shard
  rejoins fresh, with the lease closed at the lowered horizon.

The acceptance gates — drain-aware goodput >= MIN_GOODPUT_RATIO x
drain-less goodput AND drain-less shard-seconds >= MIN_SHARD_SECONDS_RATIO
x drain-aware shard-seconds (drain must win on BOTH axes: more requests
inside their SLO *and* fewer provisioned shard-seconds) — are enforced by
the exit code and the pytest-benchmark entry, so CI fails if voluntary
drains regress.

Results are written to ``BENCH_elastic_scaling.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.serving import (
    Autoscaler,
    BatchScheduler,
    InferenceRequest,
    RequestTrace,
    ServingConfig,
    ShardedServiceCluster,
    SLOPolicy,
    TraceArrivals,
)
from repro.serving.cluster import _home_shard
from repro.serving.scheduler import RequestBatch
from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

#: Output path of the machine-readable results (repo root, tracked by PRs).
RESULT_PATH = REPO_ROOT / "BENCH_elastic_scaling.json"

#: Shard count: one always-on shard plus one elastic shard.
NUM_SHARDS = 2

#: Dispatch policy.  Locality pins the workload to its home shard until the
#: backlog exceeds the spill threshold — which is what parks queued work on
#: the shard the autoscaler is about to deactivate.
POLICY = "locality"

#: Flash-crowd shape, in units of one measured service pass ``d``: each
#: cycle is CYCLE_UNITS long and opens with CROWD requests at once; the
#: trough trickle arrives at TRICKLE_UNITS into the cycle, deep inside the
#: crowd's backlog horizon but after the queue-depth signal has sagged
#: below the scale-down band.
CROWD = 12
TRICKLE_UNITS = (5.4, 5.5)
CYCLE_UNITS = 12.0

#: Cycle counts of the two modes.
NUM_CYCLES = 24
NUM_CYCLES_QUICK = 6

#: The SLO, as a multiple of one service pass: generous enough for the
#: crowd tail of a promptly re-balanced cluster (<= 6.5 passes), missed by
#: the deeper tail a stranded backlog and a late scale-up produce.
SLO_UNITS = 6.75

#: Autoscaler bands (queue-depth thresholds, hysteresis observations).
SCALE_UP_DEPTH = 4.0
SCALE_DOWN_DEPTH = 3.0
HYSTERESIS = 2

#: Acceptance gates: drain-aware must win on BOTH axes.
MIN_GOODPUT_RATIO = 1.05
MIN_SHARD_SECONDS_RATIO = 1.02


def _profile():
    """A workload whose locality home (at 2 active shards) is shard 1."""
    for i in range(64):
        candidate = WorkloadProfile(
            name=f"elastic-{i}", batch_size=800,
            num_nodes=50_000, num_edges=400_000, avg_degree=8.0,
        )
        batch = RequestBatch(
            requests=[
                InferenceRequest(request_id=0, arrival_seconds=0.0, workload=candidate)
            ],
            ready_seconds=0.0,
        )
        if _home_shard(batch, NUM_SHARDS) == NUM_SHARDS - 1:
            return candidate
    raise AssertionError("no candidate workload hashed to the elastic shard")


def _trace(profile, d: float, num_cycles: int) -> RequestTrace:
    requests = []
    for cycle in range(num_cycles):
        base = cycle * CYCLE_UNITS
        units = [base] * CROWD + [base + u for u in TRICKLE_UNITS]
        for u in units:
            requests.append(
                InferenceRequest(
                    request_id=len(requests), arrival_seconds=u * d, workload=profile
                )
            )
    return RequestTrace(requests)


def _entry(report) -> Dict:
    goodput = report.goodput
    scale_downs = [e for e in report.scaling_timeline if e.reason == "scale-down"]
    return {
        "system": report.system,
        "num_shards": report.num_shards,
        "offered": goodput.offered,
        "served": goodput.served,
        "shed": goodput.shed,
        "failed": goodput.failed,
        "goodput_rps": round(goodput.goodput_rps, 3),
        "slo_attainment": round(goodput.slo_attainment, 4),
        "shard_seconds": round(report.shard_seconds, 6),
        "scale_downs": len(scale_downs),
        "migrated": sum(e.migrated for e in report.scaling_timeline),
        "completed": sum(e.completed for e in report.scaling_timeline),
        "conserved": goodput.offered
        == goodput.served + goodput.shed + goodput.failed,
    }


def run(quick: bool = False) -> Dict:
    """Execute the benchmark and return (and persist) the result document."""
    started = time.perf_counter()
    services = build_services()
    template = services["CPU"]
    profile = _profile()
    d = template.replicate().serve(profile).total_seconds
    num_cycles = NUM_CYCLES_QUICK if quick else NUM_CYCLES
    trace = _trace(profile, d, num_cycles)
    slo = SLOPolicy(default_slo_seconds=SLO_UNITS * d)
    print(
        f"service pass d = {d * 1e3:.2f} ms | SLO {SLO_UNITS:.0f}d | "
        f"{num_cycles} flash-crowd cycles x {CROWD + len(TRICKLE_UNITS)} requests "
        f"= {len(trace)} requests | horizon {trace[-1].arrival_seconds:.3f}s"
    )

    def serve(drain: bool):
        cluster = ShardedServiceCluster(
            template,
            num_shards=NUM_SHARDS,
            scheduler=BatchScheduler(max_batch_size=1),
            policy=POLICY,
        )
        config = ServingConfig(
            slo=slo,
            autoscaler=Autoscaler(
                min_shards=1,
                max_shards=NUM_SHARDS,
                scale_up_depth=SCALE_UP_DEPTH,
                scale_down_depth=SCALE_DOWN_DEPTH,
                hysteresis_observations=HYSTERESIS,
                warmup_seconds=0.0,
                drain=drain,
            ),
        )
        return cluster.serve_online(TraceArrivals(trace), config=config)

    drainless_entry = _entry(serve(drain=False))
    drained_entry = _entry(serve(drain=True))
    for label, entry in (("drain-less", drainless_entry), ("drain-aware", drained_entry)):
        print(
            f"{label:>12}: goodput {entry['goodput_rps']:8.1f} rps | attainment "
            f"{entry['slo_attainment']:6.1%} | shard-seconds {entry['shard_seconds']:8.4f} | "
            f"scale-downs {entry['scale_downs']:2d} | migrated {entry['migrated']:3d} | "
            f"completed {entry['completed']:3d}"
        )

    goodput_ratio = drained_entry["goodput_rps"] / max(
        drainless_entry["goodput_rps"], 1e-9
    )
    shard_seconds_ratio = drainless_entry["shard_seconds"] / max(
        drained_entry["shard_seconds"], 1e-9
    )
    print(
        f"\ndrain-aware goodput {goodput_ratio:.2f}x drain-less "
        f"(gate >= {MIN_GOODPUT_RATIO:.2f}x) | drain-less shard-seconds "
        f"{shard_seconds_ratio:.2f}x drain-aware (gate >= {MIN_SHARD_SECONDS_RATIO:.2f}x)"
    )

    document = {
        "benchmark": "elastic_scaling",
        "_provenance": (
            "simulated metrics from ShardedServiceCluster.serve_online (engine-"
            "independent); the flash-crowd trace is built in units of the "
            "committing machine's measured service pass d (deterministic), "
            "wall_clock_seconds is this script's runtime. Regenerate with "
            "`python benchmarks/bench_elastic_scaling.py`."
        ),
        "quick": bool(quick),
        "traffic": {
            "num_requests": len(trace),
            "num_cycles": num_cycles,
            "crowd": CROWD,
            "trickle_units": list(TRICKLE_UNITS),
            "cycle_units": CYCLE_UNITS,
            "service_pass_seconds": round(d, 6),
        },
        "policy": POLICY,
        "slo_seconds": round(SLO_UNITS * d, 6),
        "autoscaler": {
            "min_shards": 1,
            "max_shards": NUM_SHARDS,
            "scale_up_depth": SCALE_UP_DEPTH,
            "scale_down_depth": SCALE_DOWN_DEPTH,
            "hysteresis_observations": HYSTERESIS,
        },
        "drain_less": drainless_entry,
        "drain_aware": drained_entry,
        "goodput_ratio": round(goodput_ratio, 3),
        "min_goodput_ratio": MIN_GOODPUT_RATIO,
        "shard_seconds_ratio": round(shard_seconds_ratio, 3),
        "min_shard_seconds_ratio": MIN_SHARD_SECONDS_RATIO,
        "wall_clock_seconds": round(time.perf_counter() - started, 4),
    }
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(f"\nresults written to {RESULT_PATH}")
    return document


def test_elastic_scaling(benchmark):
    """Pytest-benchmark entry point with the drain acceptance gates."""
    from common import run_once

    document = run_once(benchmark, lambda: run(quick=True))
    assert document["goodput_ratio"] >= MIN_GOODPUT_RATIO
    assert document["shard_seconds_ratio"] >= MIN_SHARD_SECONDS_RATIO
    assert document["drain_aware"]["conserved"]
    assert document["drain_less"]["conserved"]
    assert document["drain_aware"]["migrated"] > 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer flash-crowd cycles (CI mode)",
    )
    args = parser.parse_args(argv)
    document = run(quick=args.quick)
    failures = []
    if document["goodput_ratio"] < document["min_goodput_ratio"]:
        failures.append(
            f"goodput ratio {document['goodput_ratio']:.3f}x < "
            f"{MIN_GOODPUT_RATIO:.2f}x"
        )
    if document["shard_seconds_ratio"] < document["min_shard_seconds_ratio"]:
        failures.append(
            f"shard-seconds ratio {document['shard_seconds_ratio']:.3f}x < "
            f"{MIN_SHARD_SECONDS_RATIO:.2f}x"
        )
    for label in ("drain_aware", "drain_less"):
        if not document[label]["conserved"]:
            failures.append(f"{label} run broke conservation")
    if failures:
        for failure in failures:
            print(f"ELASTIC-SCALING REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
