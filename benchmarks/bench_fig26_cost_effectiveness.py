"""Fig. 26: sensitivity to LUT budget and board price (cost effectiveness)."""

from repro.baselines.gpu import GPUPreprocessingSystem
from repro.core.config import FPGAResources
from repro.gnn.inference import InferenceLatencyModel
from repro.system.boards import BOARD_CATALOG
from repro.system.service import GNNService
from repro.system.variants import DynPreSystem
from repro.core.bitstream import generate_bitstream_library
from repro.system.workload import WorkloadProfile

from common import print_figure, run_once

LUT_SWEEP = [400_000, 800_000, 1_600_000, 3_200_000, 4_100_000]
DATASETS = ["AX", "SO", "AM"]


def _dynpre_service(board: FPGAResources) -> GNNService:
    library = generate_bitstream_library(board)
    return GNNService(DynPreSystem(library=library, board=board))


def _speedup(board: FPGAResources, workload) -> float:
    gpu = GNNService(GPUPreprocessingSystem(), inference=InferenceLatencyModel())
    dyn = _dynpre_service(board)
    gpu_total = gpu.serve(workload).total_seconds
    dyn.serve(workload)
    dyn_total = dyn.serve(workload).total_seconds
    return gpu_total / dyn_total


def reproduce_fig26a():
    """Relative performance of DynPre vs GPU while sweeping the LUT budget.

    The DRAM interface scales with the device: smaller parts ship fewer memory
    channels, so the sweep scales the device bandwidth with the LUT count.
    """
    rows = []
    for luts in LUT_SWEEP:
        bandwidth = 64e9 * (luts / LUT_SWEEP[-1]) ** 0.5
        board = FPGAResources(
            name=f"sweep-{luts}", luts=luts, price_usd=1.0, dram_bandwidth=bandwidth
        )
        row = [luts]
        for key in DATASETS:
            row.append(round(_speedup(board, WorkloadProfile.from_dataset(key)), 2))
        rows.append(row)
    return rows


def reproduce_fig26b():
    """Performance and cost effectiveness across catalogued FPGA boards."""
    rows = []
    for board in BOARD_CATALOG:
        resources = board.resources()
        speedups = [
            _speedup(resources, WorkloadProfile.from_dataset(key)) for key in DATASETS
        ]
        mean_speedup = sum(speedups) / len(speedups)
        cost_eff = mean_speedup / board.normalized_price
        rows.append(
            [
                board.name,
                board.tier,
                round(board.normalized_price, 2),
                round(mean_speedup, 2),
                round(cost_eff, 2),
            ]
        )
    return rows


def test_fig26_cost_effectiveness(benchmark):
    def run():
        return reproduce_fig26a(), reproduce_fig26b()

    fig_a, fig_b = run_once(benchmark, run)
    print_figure(
        "Fig. 26a: DynPre speedup over GPU vs LUT count (paper: 1.9x -> 9.6x)",
        ["luts"] + DATASETS,
        fig_a,
    )
    print_figure(
        "Fig. 26b: performance and cost effectiveness per board (price normalised"
        " to the RTX 3090; paper: low-end boards win on cost effectiveness)",
        ["board", "tier", "price/GPU", "speedup_vs_GPU", "cost_effectiveness"],
        fig_b,
    )
    # Speedup must not decrease as the LUT budget grows.
    for key_index in range(1, len(DATASETS) + 1):
        series = [row[key_index] for row in fig_a]
        assert series[-1] >= series[0]
    # Low-price boards win on cost effectiveness; high-price boards on speedup.
    low = [row for row in fig_b if row[1] == "low"]
    high = [row for row in fig_b if row[1] == "high"]
    assert max(r[4] for r in low) > max(r[4] for r in high)
    assert max(r[3] for r in high) > max(r[3] for r in low)
