"""Fault-tolerance benchmark: goodput under crash-and-recover outages,
with the fault-tolerance subsystem on vs off.

A 4-shard DynPre cluster serves open-loop traffic at ~2x its *measured*
saturated throughput while two of the four shards crash mid-run and come
back later (staggered outages, so capacity dips to 2/4 and 3/4 shards).
Both runs see the exact same arrivals and the exact same fault events;
only the serving stack's reaction differs:

* **fault-oblivious** — ``FaultSchedule(fault_aware=False)``: dispatch
  ignores liveness.  A dead shard fails requests instantly without
  advancing its busy horizon, so least-loaded dispatch keeps feeding the
  "idle-looking" dead shard for the whole outage (the classic
  no-health-check death spiral); queued work dies with its shard at a
  crash, and in-flight kills are terminal.  Goodput collapses for the
  whole outage window.
* **fault-aware** — the full subsystem of :mod:`repro.serving.faults`:
  crashes are detected at dispatch, queued work drains to the surviving
  shards (migration), in-flight failures retry with exponential backoff
  under a per-request budget, and admission predicts against live shards
  only.

The acceptance gate — fault-aware goodput >= 2x fault-oblivious goodput —
is enforced by the exit code and the pytest-benchmark entry, so CI fails
if recovery regresses.

A second section stress-tests scale: a 100k-request bursty trace
(``--quick``: 10k) through the autoscaled online loop under a seeded
random crash/recover/slowdown schedule, asserting exact conservation
(offered == served + shed + failed) and recording wall-clock.

Results are written to ``BENCH_fault_tolerance.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.serving import (
    AdmissionController,
    Autoscaler,
    BatchScheduler,
    BurstyArrivals,
    FAULT_CRASH,
    FAULT_RECOVER,
    FaultEvent,
    FaultSchedule,
    OpenLoopArrivals,
    RandomFaults,
    ShardedServiceCluster,
    SLOPolicy,
    TraceArrivals,
)
from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

#: Output path of the machine-readable results (repo root, tracked by PRs).
RESULT_PATH = REPO_ROOT / "BENCH_fault_tolerance.json"

#: Workload mix of the traffic (same Table II mix as the other serving benches).
TRACE_DATASETS = ("PH", "AX", "MV")

#: Scheduler settings shared by both runs.
MAX_BATCH_SIZE = 4
MAX_WAIT_SECONDS = 0.005

#: Shard count of both clusters.
NUM_SHARDS = 4

#: Dispatch policy of every run.  Least-loaded is the policy the rest of
#: the serving benches use, and it is exactly what makes the oblivious
#: baseline catastrophic: a fail-fast dead shard never advances its busy
#: horizon, so it always looks least loaded and attracts all traffic until
#: it recovers.  The fault-aware run uses the same policy over live shards.
POLICY = "least-loaded"

#: The SLO, as a multiple of the mean single-request cost estimate.
SLO_COST_MULTIPLE = 3.0

#: Offered load as a multiple of the measured saturated throughput (2x = the
#: overload regime the acceptance gate is defined on).
OVERLOAD_FACTOR = 2.0

#: Outage windows as fractions of the trace horizon: two of the four shards
#: crash mid-run and recover later, staggered so capacity dips to 2/4.
OUTAGES = (
    (0, 0.10, 0.70),  # (shard, crash at, recover at) x horizon
    (1, 0.25, 0.90),
)

#: Retry policy of both schedules (the oblivious baseline never retries —
#: ``fault_aware=False`` makes in-flight crash kills terminal).
RETRY_BUDGET = 3

#: The acceptance gate: fault-aware goodput must be at least this multiple
#: of the fault-oblivious goodput on the identical run.
MIN_GOODPUT_RATIO = 2.0

#: Stress section: request budget and overload of the autoscaled run.
STRESS_REQUESTS = 100_000
STRESS_REQUESTS_QUICK = 10_000
STRESS_OVERLOAD = 1.2

SEED = 17


def _mix() -> List[WorkloadProfile]:
    return [WorkloadProfile.from_dataset(key) for key in TRACE_DATASETS]


def _scheduler() -> BatchScheduler:
    return BatchScheduler(max_batch_size=MAX_BATCH_SIZE, max_wait_seconds=MAX_WAIT_SECONDS)


def _measure_capacity(template, num_requests: int) -> float:
    """Saturated throughput of the cluster on this mix (requests/second)."""
    mix = _mix()
    estimate = sum(template.estimate_service_seconds(w) for w in mix) / len(mix)
    saturating_rate = 20.0 / estimate  # far beyond capacity: pure backlog
    cluster = ShardedServiceCluster(
        template, num_shards=NUM_SHARDS, scheduler=_scheduler(), policy=POLICY
    )
    trace = OpenLoopArrivals(mix, rate_rps=saturating_rate, seed=SEED).trace(
        num_requests
    )
    return cluster.serve_trace(trace).throughput_rps


def _outage_schedule(horizon_seconds: float, fault_aware: bool) -> FaultSchedule:
    """The staggered crash-and-recover schedule over ``horizon_seconds``."""
    events = []
    for shard_id, crash_frac, recover_frac in OUTAGES:
        events.append(
            FaultEvent(
                seconds=crash_frac * horizon_seconds,
                shard_id=shard_id,
                kind=FAULT_CRASH,
            )
        )
        events.append(
            FaultEvent(
                seconds=recover_frac * horizon_seconds,
                shard_id=shard_id,
                kind=FAULT_RECOVER,
            )
        )
    return FaultSchedule(
        events=tuple(events),
        retry_budget=RETRY_BUDGET,
        retry_backoff_seconds=0.01 * horizon_seconds,
        fault_aware=fault_aware,
    )


def _entry(report) -> Dict:
    goodput = report.goodput
    faults = report.faults
    return {
        "system": report.system,
        "num_shards": report.num_shards,
        "offered": goodput.offered,
        "served": goodput.served,
        "shed": goodput.shed,
        "failed": goodput.failed,
        "throughput_rps": round(report.throughput_rps, 3),
        "goodput_rps": round(goodput.goodput_rps, 3),
        "slo_attainment": round(goodput.slo_attainment, 4),
        "faults": faults.as_dict() if faults is not None else None,
    }


def run(quick: bool = False) -> Dict:
    """Execute the benchmark and return (and persist) the result document."""
    started = time.perf_counter()
    mix = _mix()
    services = build_services()
    template = services["DynPre"]

    mean_cost = sum(template.estimate_service_seconds(w) for w in mix) / len(mix)
    slo_seconds = SLO_COST_MULTIPLE * mean_cost
    capacity_rps = _measure_capacity(template, num_requests=200 if quick else 500)
    total_rate = OVERLOAD_FACTOR * capacity_rps
    num_requests = 400 if quick else 1000
    trace = OpenLoopArrivals(mix, rate_rps=total_rate, seed=SEED).trace(num_requests)
    horizon = trace[-1].arrival_seconds
    print(
        f"measured capacity ~{capacity_rps:.0f} rps | SLO {slo_seconds * 1e3:.1f} ms | "
        f"offered {trace.offered_rate_rps:.0f} rps "
        f"({trace.offered_rate_rps / capacity_rps:.2f}x) | {len(trace)} requests | "
        f"horizon {horizon:.3f}s"
    )

    def serve(fault_aware: bool):
        cluster = ShardedServiceCluster(
            template, num_shards=NUM_SHARDS, scheduler=_scheduler(), policy=POLICY
        )
        slo = SLOPolicy(default_slo_seconds=slo_seconds)
        return cluster.serve_online(
            TraceArrivals(trace),
            slo=slo,
            admission=AdmissionController(policy=slo),
            faults=_outage_schedule(horizon, fault_aware),
        )

    oblivious = serve(fault_aware=False)
    aware = serve(fault_aware=True)

    oblivious_entry = _entry(oblivious)
    aware_entry = _entry(aware)
    for label, entry in (("fault-oblivious", oblivious_entry), ("fault-aware", aware_entry)):
        print(
            f"{label:>15}: goodput {entry['goodput_rps']:8.1f} rps | "
            f"served {entry['served']:4d} | shed {entry['shed']:4d} | "
            f"failed {entry['failed']:4d} | migrated "
            f"{entry['faults']['migrated']:3d} | retried {entry['faults']['retried']:3d}"
        )
    goodput_ratio = aware_entry["goodput_rps"] / max(
        oblivious_entry["goodput_rps"], 1e-9
    )
    print(
        f"\nfault-aware goodput {aware_entry['goodput_rps']:.1f} rps vs oblivious "
        f"{oblivious_entry['goodput_rps']:.1f} rps -> {goodput_ratio:.1f}x "
        f"(gate >= {MIN_GOODPUT_RATIO:.1f}x)"
    )

    # -------------------------------------------------- autoscaled stress run
    stress_requests = STRESS_REQUESTS_QUICK if quick else STRESS_REQUESTS
    stress_rate = STRESS_OVERLOAD * capacity_rps
    stress_trace = BurstyArrivals(
        mix,
        base_rate_rps=0.5 * stress_rate,
        peak_rate_rps=2.5 * stress_rate,
        period_seconds=0.5,
        burst_fraction=0.25,
        seed=SEED + 1,
    ).trace(stress_requests)
    stress_horizon = stress_trace[-1].arrival_seconds
    stress_faults = RandomFaults(
        num_shards=NUM_SHARDS,
        horizon_seconds=stress_horizon,
        mean_uptime_seconds=0.2 * stress_horizon,
        mean_downtime_seconds=0.05 * stress_horizon,
        slowdown_probability=0.25,
        slowdown_factor=2.0,
        retry_budget=RETRY_BUDGET,
        retry_backoff_seconds=0.001 * stress_horizon,
        seed=SEED,
    ).schedule()
    slo = SLOPolicy(default_slo_seconds=slo_seconds)
    stress_cluster = ShardedServiceCluster(
        template, num_shards=NUM_SHARDS, scheduler=_scheduler(), policy=POLICY
    )
    stress_started = time.perf_counter()
    stress_report = stress_cluster.serve_online(
        TraceArrivals(stress_trace),
        slo=slo,
        admission=AdmissionController(policy=slo, record_decisions=False),
        autoscaler=Autoscaler(
            min_shards=2, max_shards=NUM_SHARDS, scale_up_depth=4.0,
            scale_down_depth=0.5, hysteresis_observations=3,
        ),
        faults=stress_faults,
    )
    stress_seconds = time.perf_counter() - stress_started
    stress_goodput = stress_report.goodput
    conserved = stress_goodput.offered == (
        stress_goodput.served + stress_goodput.shed + stress_goodput.failed
    )
    if not conserved:
        raise AssertionError(
            f"conservation violated in stress run: offered {stress_goodput.offered} "
            f"!= served {stress_goodput.served} + shed {stress_goodput.shed} "
            f"+ failed {stress_goodput.failed}"
        )
    print(
        f"\nstress: {len(stress_trace)} bursty requests, "
        f"{len(stress_faults.events)} fault events, autoscaled 2..{NUM_SHARDS} shards "
        f"in {stress_seconds:.2f}s wall | served {stress_goodput.served} + shed "
        f"{stress_goodput.shed} + failed {stress_goodput.failed} == offered "
        f"{stress_goodput.offered} | {len(stress_report.scaling_timeline)} scaling events"
    )

    document = {
        "benchmark": "fault_tolerance",
        "_provenance": (
            "simulated metrics from ShardedServiceCluster.serve_online (engine-"
            "independent); capacity_rps is measured on the committing machine's "
            "simulation (deterministic), wall_clock_seconds and "
            "stress.wall_clock_seconds are this script's runtimes. Regenerate "
            "with `python benchmarks/bench_fault_tolerance.py`."
        ),
        "quick": bool(quick),
        "traffic": {
            "datasets": list(TRACE_DATASETS),
            "num_requests": len(trace),
            "offered_rate_rps": round(trace.offered_rate_rps, 3),
            "overload_factor": OVERLOAD_FACTOR,
            "seed": SEED,
        },
        "outages": [
            {"shard": shard, "crash_fraction": crash, "recover_fraction": recover}
            for shard, crash, recover in OUTAGES
        ],
        "retry_budget": RETRY_BUDGET,
        "policy": POLICY,
        "scheduler": {
            "max_batch_size": MAX_BATCH_SIZE,
            "max_wait_seconds": MAX_WAIT_SECONDS,
        },
        "slo_seconds": round(slo_seconds, 6),
        "capacity_rps": round(capacity_rps, 3),
        "fault_oblivious": oblivious_entry,
        "fault_aware": aware_entry,
        "goodput_ratio": round(goodput_ratio, 3),
        "min_goodput_ratio": MIN_GOODPUT_RATIO,
        "stress": {
            "num_requests": len(stress_trace),
            "num_fault_events": len(stress_faults.events),
            "offered": stress_goodput.offered,
            "served": stress_goodput.served,
            "shed": stress_goodput.shed,
            "failed": stress_goodput.failed,
            "goodput_rps": round(stress_goodput.goodput_rps, 3),
            "scaling_events": len(stress_report.scaling_timeline),
            "conserved": conserved,
            "wall_clock_seconds": round(stress_seconds, 4),
        },
        "wall_clock_seconds": round(time.perf_counter() - started, 4),
    }
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(f"\nresults written to {RESULT_PATH}")
    return document


def test_fault_tolerance(benchmark):
    """Pytest-benchmark entry point with the recovery acceptance gate."""
    from common import run_once

    document = run_once(benchmark, lambda: run(quick=True))
    assert document["goodput_ratio"] >= MIN_GOODPUT_RATIO
    assert document["stress"]["conserved"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller request budget (CI mode)",
    )
    args = parser.parse_args(argv)
    document = run(quick=args.quick)
    if document["goodput_ratio"] < document["min_goodput_ratio"]:
        print(
            f"FAULT-TOLERANCE REGRESSION: goodput ratio "
            f"{document['goodput_ratio']:.2f}x < {MIN_GOODPUT_RATIO:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
