"""Shared helpers for the benchmark harness.

Every ``bench_*`` module reproduces one table or figure of the paper: it
computes the same rows or series the paper reports (using the full-scale
Table II workload parameters through the analytic models, or the functional
simulator on scaled synthetic graphs where noted), prints them, and times the
computation through pytest-benchmark.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Callable, Dict, Sequence

from repro.analysis.report import format_series, format_table
from repro.graph.datasets import DATASET_ORDER
from repro.system.service import GNNService
from repro.system.workload import WorkloadProfile

#: Directory where every reproduced table/figure is also written as a text
#: file, so the harness output survives pytest's stdout capture.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _save_result(title: str, text: str) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:80]
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")


def all_workloads(**kwargs) -> Dict[str, WorkloadProfile]:
    """Full-scale workload profiles for the 11 Table II datasets."""
    return {key: WorkloadProfile.from_dataset(key, **kwargs) for key in DATASET_ORDER}


def steady_state_report(service: GNNService, workload: WorkloadProfile):
    """Serve twice and return the second (steady-state) report.

    The first pass lets reconfigurable systems adapt to the workload so that
    per-dataset comparisons (Fig. 18 style) are not charged the one-off
    reconfiguration cost; the time-series benchmarks charge it explicitly.
    """
    service.serve(workload)
    return service.serve(workload)


def print_figure(title: str, columns: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Format, print, persist and return a figure/table reproduction."""
    text = format_table(title, columns, rows)
    print("\n" + text)
    _save_result(title, text)
    return text


def print_series(title: str, x_label: str, x_values, series: Dict[str, Sequence[float]]) -> str:
    """Format, print, persist and return an x/y series reproduction."""
    text = format_series(title, x_label, x_values, series)
    print("\n" + text)
    _save_result(title, text)
    return text


def run_once(benchmark, fn: Callable[[], object]):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
