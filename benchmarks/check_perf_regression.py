"""Benchmark-regression gate for the preprocessing fast path.

Reads the committed ``BENCH_perf_preprocessing.json`` (the baseline the last
PR recorded), runs a fresh ``--quick`` pass of
``benchmarks/bench_perf_preprocessing.py``, and fails when the fresh
vectorized/reference speedup at any shared scale drops below
``tolerance * committed_speedup`` or below an absolute floor.  The relative
tolerance absorbs CI-runner noise; the absolute floor catches a fast path
that was quietly disabled altogether.

The fresh run overwrites ``BENCH_perf_preprocessing.json`` on disk (CI
uploads it as an artifact); the committed baseline is read into memory
first, so the comparison is committed-vs-fresh.  Locally, restore the
committed file with ``git checkout -- BENCH_perf_preprocessing.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
for path in (str(_SRC), str(REPO_ROOT / "benchmarks")):
    if path not in sys.path:
        sys.path.insert(0, path)

import bench_perf_preprocessing

#: Fresh speedup must reach this fraction of the committed speedup.
DEFAULT_TOLERANCE = 0.5

#: ... and never fall below this absolute vectorized/reference ratio.
DEFAULT_MIN_SPEEDUP = 5.0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=Path,
        default=bench_perf_preprocessing.RESULT_PATH,
        help="committed benchmark JSON to compare against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="fresh speedup must be >= tolerance * committed speedup",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="absolute lower bound on the fresh speedup",
    )
    args = parser.parse_args(argv)

    committed = json.loads(args.baseline.read_text())
    committed_by_scale = {
        entry["scale"]: entry["speedup"] for entry in committed["results"]
    }

    print("running fresh --quick preprocessing benchmark...\n")
    fresh = bench_perf_preprocessing.run(quick=True)

    failures: List[str] = []
    fresh_scales = {entry["scale"] for entry in fresh["results"]}
    unchecked = sorted(set(committed_by_scale) - fresh_scales)
    if unchecked:
        print(
            f"note: committed scales not covered by the quick run (unchecked): {unchecked}"
        )
    for entry in fresh["results"]:
        scale = entry["scale"]
        if scale not in committed_by_scale:
            continue
        baseline_speedup = committed_by_scale[scale]
        floor = max(args.tolerance * baseline_speedup, args.min_speedup)
        verdict = "ok" if entry["speedup"] >= floor else "REGRESSION"
        print(
            f"{scale:>5}: committed {baseline_speedup:6.2f}x | "
            f"fresh {entry['speedup']:6.2f}x | floor {floor:6.2f}x | {verdict}"
        )
        if entry["speedup"] < floor:
            failures.append(
                f"{scale}: fresh speedup {entry['speedup']:.2f}x below floor {floor:.2f}x "
                f"(committed {baseline_speedup:.2f}x, tolerance {args.tolerance})"
            )

    if failures:
        print("\nPERF REGRESSION DETECTED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nno perf regression: fast-path speedup holds within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
