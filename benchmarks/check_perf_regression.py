"""Benchmark-regression gates for the fast paths.

Committed-vs-fresh comparisons:

* **Preprocessing** — reads the committed ``BENCH_perf_preprocessing.json``,
  runs a fresh ``--quick`` pass of ``benchmarks/bench_perf_preprocessing.py``,
  and fails when the fresh vectorized/reference speedup at any shared scale
  drops below ``tolerance * committed_speedup`` or below an absolute floor.
* **Serving engine** — reads the committed ``BENCH_engine_speed.json``, runs
  a fresh ``--quick`` pass of ``benchmarks/bench_engine_speed.py``, and fails
  when (a) the fresh fast/reference speedup drops below
  ``tolerance * committed_speedup`` or the scale's own gate, (b) the fresh
  chunked-vs-per-event speedup drops below ``tolerance * committed`` or the
  scale's own floor (catching a quietly disabled array-native loop), or
  (c) the fast engine's *wall-clock* regresses by more than
  ``--engine-wall-tolerance`` (default 20%) after normalizing out the
  machine: the reference engine runs the identical simulation, so
  ``fresh_reference / committed_reference`` is the machine-speed factor and
  the check is ``fresh_fast <= tolerance * machine_factor * committed_fast``.
  With ``--engine-million`` (opt-in; ~30s) it additionally re-runs the
  fast-only 1M-request tier and gates the chunked-vs-per-event speedup at
  ``max(tolerance * committed, 3.0)`` plus a machine-normalized wall-clock
  budget (normalizer: the per-event loop, since the reference engine is
  absent at that scale).
* **Fault tolerance** — reads the committed ``BENCH_fault_tolerance.json``,
  runs a fresh ``--quick`` pass of ``benchmarks/bench_fault_tolerance.py``,
  and fails when the fresh fault-aware/fault-oblivious goodput ratio drops
  below ``tolerance * committed_ratio`` or the benchmark's own absolute
  gate, or when the stress run's conservation invariant breaks.
* **Failure domains** — reads the committed ``BENCH_failure_domains.json``,
  runs a fresh ``--quick`` pass of ``benchmarks/bench_failure_domains.py``,
  and fails when the fresh domain-aware/domain-oblivious goodput ratio under
  chained rack outages drops below ``tolerance * committed_ratio`` or the
  benchmark's own absolute gate, when the correlated-fault stress run breaks
  conservation, or when it stops observing whole-rack outages.
* **Graceful degradation** — reads the committed
  ``BENCH_graceful_degradation.json``, runs a fresh ``--quick`` pass of
  ``benchmarks/bench_graceful_degradation.py``, and fails when the fresh
  tiered/binary SLO-weighted goodput ratio drops below
  ``tolerance * committed_ratio`` or the benchmark's own absolute gate, or
  when either run breaks the per-tier conservation invariant.
* **Elastic scaling** — reads the committed ``BENCH_elastic_scaling.json``,
  runs a fresh ``--quick`` pass of ``benchmarks/bench_elastic_scaling.py``,
  and fails when the fresh drain-aware/drain-less goodput ratio or the
  drain-less/drain-aware shard-seconds ratio drops below
  ``tolerance * committed_ratio`` or the benchmark's own absolute gates,
  when a run breaks conservation, or when the drained run stops migrating
  queued work at scale-down.

Relative tolerances absorb CI-runner noise; the absolute floors catch a
fast path that was quietly disabled altogether.

The fresh runs overwrite the ``BENCH_*.json`` files on disk (CI uploads
them as artifacts); the committed baselines are read into memory first, so
each comparison is committed-vs-fresh.  Locally, restore the committed
files with ``git checkout -- 'BENCH_*.json'``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
for path in (str(_SRC), str(REPO_ROOT / "benchmarks")):
    if path not in sys.path:
        sys.path.insert(0, path)

import bench_elastic_scaling
import bench_engine_speed
import bench_failure_domains
import bench_fault_tolerance
import bench_graceful_degradation
import bench_perf_preprocessing

#: Fresh speedup must reach this fraction of the committed speedup.
DEFAULT_TOLERANCE = 0.5

#: ... and never fall below this absolute vectorized/reference ratio.
DEFAULT_MIN_SPEEDUP = 5.0

#: Engine-bench wall-clock budget: fresh fast-engine seconds may exceed the
#: machine-normalized committed seconds by at most this factor (20%).
DEFAULT_ENGINE_WALL_TOLERANCE = 1.2


def _check_preprocessing(args) -> List[str]:
    committed = json.loads(args.baseline.read_text())
    committed_by_scale = {
        entry["scale"]: entry["speedup"] for entry in committed["results"]
    }

    print("running fresh --quick preprocessing benchmark...\n")
    fresh = bench_perf_preprocessing.run(quick=True)

    failures: List[str] = []
    fresh_scales = {entry["scale"] for entry in fresh["results"]}
    unchecked = sorted(set(committed_by_scale) - fresh_scales)
    if unchecked:
        print(
            f"note: committed scales not covered by the quick run (unchecked): {unchecked}"
        )
    for entry in fresh["results"]:
        scale = entry["scale"]
        if scale not in committed_by_scale:
            continue
        baseline_speedup = committed_by_scale[scale]
        floor = max(args.tolerance * baseline_speedup, args.min_speedup)
        verdict = "ok" if entry["speedup"] >= floor else "REGRESSION"
        print(
            f"{scale:>5}: committed {baseline_speedup:6.2f}x | "
            f"fresh {entry['speedup']:6.2f}x | floor {floor:6.2f}x | {verdict}"
        )
        if entry["speedup"] < floor:
            failures.append(
                f"preprocessing {scale}: fresh speedup {entry['speedup']:.2f}x below "
                f"floor {floor:.2f}x (committed {baseline_speedup:.2f}x, "
                f"tolerance {args.tolerance})"
            )
    return failures


def _check_engine(args) -> List[str]:
    if not args.engine_baseline.exists():
        # Fail loudly, like the preprocessing gate's FileNotFoundError: a
        # missing baseline must not silently disable the engine check.
        return [
            f"engine: committed baseline {args.engine_baseline} is missing — "
            "regenerate with `python benchmarks/bench_engine_speed.py` and commit it"
        ]
    committed = json.loads(args.engine_baseline.read_text())
    committed_by_scale = {entry["scale"]: entry for entry in committed["results"]}

    print("\nrunning fresh --quick serving-engine benchmark...\n")
    fresh = bench_engine_speed.run(quick=True)

    failures: List[str] = []
    for entry in fresh["results"]:
        scale = entry["scale"]
        baseline = committed_by_scale.get(scale)
        if baseline is None:
            continue
        # Speedup floor: relative to the committed ratio, never below the
        # scale's own absolute gate (machine-independent).
        floor = max(args.tolerance * baseline["speedup"], entry["min_speedup"])
        speedup_ok = entry["speedup"] >= floor
        # Wall-clock: normalize out the machine via the reference engine
        # (same simulation, same Python), then flag a >20% fast regression.
        machine_factor = entry["reference_seconds"] / max(
            baseline["reference_seconds"], 1e-12
        )
        wall_budget = args.engine_wall_tolerance * machine_factor * baseline["fast_seconds"]
        wall_ok = entry["fast_seconds"] <= wall_budget
        # Chunked floor: the array-native loop must keep beating the
        # per-event loop (a silent fallback to per-event would still pass
        # the fast-vs-reference gate).  Pre-chunked baselines lack the
        # field; fall back to the scale's own absolute floor then.
        chunked_floor = max(
            args.tolerance * baseline.get("chunked_speedup", 0.0),
            entry["min_chunked_speedup"],
        )
        chunked_ok = entry["chunked_speedup"] >= chunked_floor
        verdict = "ok" if (speedup_ok and wall_ok and chunked_ok) else "REGRESSION"
        print(
            f"{scale:>7}: committed {baseline['speedup']:6.2f}x | "
            f"fresh {entry['speedup']:6.2f}x | floor {floor:6.2f}x | "
            f"chunked {entry['chunked_speedup']:5.2f}x (floor {chunked_floor:4.2f}x) | "
            f"fast {entry['fast_seconds']:6.3f}s (budget {wall_budget:6.3f}s) | {verdict}"
        )
        if not speedup_ok:
            failures.append(
                f"engine {scale}: fresh speedup {entry['speedup']:.2f}x below "
                f"floor {floor:.2f}x (committed {baseline['speedup']:.2f}x)"
            )
        if not chunked_ok:
            failures.append(
                f"engine {scale}: fresh chunked-vs-per-event speedup "
                f"{entry['chunked_speedup']:.2f}x below floor {chunked_floor:.2f}x "
                f"(committed {baseline.get('chunked_speedup', 'n/a')})"
            )
        if not wall_ok:
            failures.append(
                f"engine {scale}: fast wall-clock {entry['fast_seconds']:.3f}s exceeds "
                f"{args.engine_wall_tolerance:.0%} of the machine-normalized committed "
                f"{baseline['fast_seconds']:.3f}s (budget {wall_budget:.3f}s)"
            )

    if args.engine_million:
        baseline_million = committed.get("million")
        if baseline_million is None:
            failures.append(
                "engine 1M: committed baseline has no 'million' section — "
                "regenerate with `python benchmarks/bench_engine_speed.py` and commit it"
            )
            return failures
        print("\nrunning fresh fast-only 1M-request tier (--engine-million)...\n")
        fresh_million = bench_engine_speed.run_million()
        floor = max(
            args.tolerance * baseline_million["chunked_speedup"],
            fresh_million["min_chunked_speedup"],
        )
        speedup_ok = fresh_million["chunked_speedup"] >= floor
        # No reference run at 1M; the per-event fast loop is the identical
        # simulation on both machines, so it is the machine normalizer.
        machine_factor = fresh_million["event_seconds"] / max(
            baseline_million["event_seconds"], 1e-12
        )
        wall_budget = (
            args.engine_wall_tolerance
            * machine_factor
            * baseline_million["chunked_seconds"]
        )
        wall_ok = fresh_million["chunked_seconds"] <= wall_budget
        verdict = "ok" if (speedup_ok and wall_ok) else "REGRESSION"
        print(
            f"{fresh_million['scale']:>7}: committed "
            f"{baseline_million['chunked_speedup']:6.2f}x | "
            f"fresh {fresh_million['chunked_speedup']:6.2f}x | floor {floor:6.2f}x | "
            f"chunked {fresh_million['chunked_seconds']:6.3f}s "
            f"(budget {wall_budget:6.3f}s) | {verdict}"
        )
        if not speedup_ok:
            failures.append(
                f"engine 1M: fresh chunked-vs-per-event speedup "
                f"{fresh_million['chunked_speedup']:.2f}x below floor {floor:.2f}x "
                f"(committed {baseline_million['chunked_speedup']:.2f}x)"
            )
        if not wall_ok:
            failures.append(
                f"engine 1M: chunked wall-clock "
                f"{fresh_million['chunked_seconds']:.3f}s exceeds "
                f"{args.engine_wall_tolerance:.0%} of the machine-normalized "
                f"committed {baseline_million['chunked_seconds']:.3f}s "
                f"(budget {wall_budget:.3f}s)"
            )
    return failures


def _check_fault_tolerance(args) -> List[str]:
    if not args.fault_baseline.exists():
        return [
            f"fault-tolerance: committed baseline {args.fault_baseline} is missing — "
            "regenerate with `python benchmarks/bench_fault_tolerance.py` and commit it"
        ]
    committed = json.loads(args.fault_baseline.read_text())

    print("\nrunning fresh --quick fault-tolerance benchmark...\n")
    fresh = bench_fault_tolerance.run(quick=True)

    failures: List[str] = []
    floor = max(
        args.tolerance * committed["goodput_ratio"], fresh["min_goodput_ratio"]
    )
    verdict = "ok" if fresh["goodput_ratio"] >= floor else "REGRESSION"
    print(
        f"recovery: committed {committed['goodput_ratio']:6.2f}x | "
        f"fresh {fresh['goodput_ratio']:6.2f}x | floor {floor:6.2f}x | {verdict}"
    )
    if fresh["goodput_ratio"] < floor:
        failures.append(
            f"fault-tolerance: fresh fault-aware/oblivious goodput ratio "
            f"{fresh['goodput_ratio']:.2f}x below floor {floor:.2f}x "
            f"(committed {committed['goodput_ratio']:.2f}x, tolerance {args.tolerance})"
        )
    if not fresh["stress"]["conserved"]:
        failures.append(
            "fault-tolerance: stress run broke conservation "
            "(offered != served + shed + failed)"
        )
    return failures


def _check_failure_domains(args) -> List[str]:
    if not args.failure_domain_baseline.exists():
        return [
            f"failure-domains: committed baseline {args.failure_domain_baseline} "
            "is missing — regenerate with "
            "`python benchmarks/bench_failure_domains.py` and commit it"
        ]
    committed = json.loads(args.failure_domain_baseline.read_text())

    print("\nrunning fresh --quick failure-domain benchmark...\n")
    fresh = bench_failure_domains.run(quick=True)

    failures: List[str] = []
    floor = max(
        args.tolerance * committed["goodput_ratio"], fresh["min_goodput_ratio"]
    )
    verdict = "ok" if fresh["goodput_ratio"] >= floor else "REGRESSION"
    print(
        f"placement: committed {committed['goodput_ratio']:6.2f}x | "
        f"fresh {fresh['goodput_ratio']:6.2f}x | floor {floor:6.2f}x | {verdict}"
    )
    if fresh["goodput_ratio"] < floor:
        failures.append(
            f"failure-domains: fresh domain-aware/oblivious goodput ratio "
            f"{fresh['goodput_ratio']:.2f}x below floor {floor:.2f}x "
            f"(committed {committed['goodput_ratio']:.2f}x, tolerance {args.tolerance})"
        )
    if not fresh["stress"]["conserved"]:
        failures.append(
            "failure-domains: correlated-fault stress run broke conservation "
            "(offered != served + shed + failed)"
        )
    if fresh["stress"]["domain_outages"] <= 0:
        failures.append(
            "failure-domains: correlated-fault stress run observed no whole-rack "
            "outages (correlated generator quietly disabled?)"
        )
    return failures


def _check_graceful_degradation(args) -> List[str]:
    if not args.degradation_baseline.exists():
        return [
            f"graceful-degradation: committed baseline {args.degradation_baseline} "
            "is missing — regenerate with "
            "`python benchmarks/bench_graceful_degradation.py` and commit it"
        ]
    committed = json.loads(args.degradation_baseline.read_text())

    print("\nrunning fresh --quick graceful-degradation benchmark...\n")
    fresh = bench_graceful_degradation.run(quick=True)

    failures: List[str] = []
    floor = max(
        args.tolerance * committed["weighted_goodput_ratio"],
        fresh["min_weighted_goodput_ratio"],
    )
    verdict = "ok" if fresh["weighted_goodput_ratio"] >= floor else "REGRESSION"
    print(
        f"tiering: committed {committed['weighted_goodput_ratio']:6.2f}x | "
        f"fresh {fresh['weighted_goodput_ratio']:6.2f}x | floor {floor:6.2f}x | {verdict}"
    )
    if fresh["weighted_goodput_ratio"] < floor:
        failures.append(
            f"graceful-degradation: fresh tiered/binary SLO-weighted goodput ratio "
            f"{fresh['weighted_goodput_ratio']:.2f}x below floor {floor:.2f}x "
            f"(committed {committed['weighted_goodput_ratio']:.2f}x, "
            f"tolerance {args.tolerance})"
        )
    for label in ("binary", "tiered"):
        if not fresh[label]["conserved"]:
            failures.append(
                f"graceful-degradation: {label} run broke conservation "
                "(offered != served_full + served_degraded + shed + failed)"
            )
    return failures


def _check_elastic_scaling(args) -> List[str]:
    if not args.elastic_baseline.exists():
        return [
            f"elastic-scaling: committed baseline {args.elastic_baseline} is missing — "
            "regenerate with `python benchmarks/bench_elastic_scaling.py` and commit it"
        ]
    committed = json.loads(args.elastic_baseline.read_text())

    print("\nrunning fresh --quick elastic-scaling benchmark...\n")
    fresh = bench_elastic_scaling.run(quick=True)

    failures: List[str] = []
    for key, label in (
        ("goodput_ratio", "drain-aware/drain-less goodput"),
        ("shard_seconds_ratio", "drain-less/drain-aware shard-seconds"),
    ):
        floor = max(args.tolerance * committed[key], fresh[f"min_{key}"])
        verdict = "ok" if fresh[key] >= floor else "REGRESSION"
        print(
            f"{label}: committed {committed[key]:6.2f}x | "
            f"fresh {fresh[key]:6.2f}x | floor {floor:6.2f}x | {verdict}"
        )
        if fresh[key] < floor:
            failures.append(
                f"elastic-scaling: fresh {label} ratio {fresh[key]:.3f}x below "
                f"floor {floor:.3f}x (committed {committed[key]:.3f}x, "
                f"tolerance {args.tolerance})"
            )
    for label in ("drain_aware", "drain_less"):
        if not fresh[label]["conserved"]:
            failures.append(
                f"elastic-scaling: {label} run broke conservation "
                "(offered != served + shed + failed)"
            )
    if fresh["drain_aware"]["migrated"] <= 0:
        failures.append(
            "elastic-scaling: drained run migrated no queued work at scale-down "
            "(drain-and-migrate quietly disabled?)"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=Path,
        default=bench_perf_preprocessing.RESULT_PATH,
        help="committed preprocessing benchmark JSON to compare against",
    )
    parser.add_argument(
        "--engine-baseline",
        type=Path,
        default=bench_engine_speed.RESULT_PATH,
        help="committed serving-engine benchmark JSON to compare against",
    )
    parser.add_argument(
        "--fault-baseline",
        type=Path,
        default=bench_fault_tolerance.RESULT_PATH,
        help="committed fault-tolerance benchmark JSON to compare against",
    )
    parser.add_argument(
        "--failure-domain-baseline",
        type=Path,
        default=bench_failure_domains.RESULT_PATH,
        help="committed failure-domain benchmark JSON to compare against",
    )
    parser.add_argument(
        "--degradation-baseline",
        type=Path,
        default=bench_graceful_degradation.RESULT_PATH,
        help="committed graceful-degradation benchmark JSON to compare against",
    )
    parser.add_argument(
        "--elastic-baseline",
        type=Path,
        default=bench_elastic_scaling.RESULT_PATH,
        help="committed elastic-scaling benchmark JSON to compare against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="fresh speedup must be >= tolerance * committed speedup",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="absolute lower bound on the fresh preprocessing speedup",
    )
    parser.add_argument(
        "--engine-wall-tolerance",
        type=float,
        default=DEFAULT_ENGINE_WALL_TOLERANCE,
        help="allowed machine-normalized fast-engine wall-clock growth factor",
    )
    parser.add_argument(
        "--engine-million",
        action="store_true",
        help="also re-run the fast-only 1M-request engine tier and gate the "
             "chunked-vs-per-event speedup against the committed baseline",
    )
    args = parser.parse_args(argv)

    failures = _check_preprocessing(args)
    failures += _check_engine(args)
    failures += _check_fault_tolerance(args)
    failures += _check_failure_domains(args)
    failures += _check_graceful_degradation(args)
    failures += _check_elastic_scaling(args)

    if failures:
        print("\nPERF REGRESSION DETECTED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nno perf regression: fast-path speedups and wall-clock hold within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
