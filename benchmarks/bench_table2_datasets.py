"""Table II: important characteristics of the evaluated datasets."""

from repro.graph.datasets import DATASETS, DATASET_ORDER, dataset_table, load_dataset

from common import print_figure, run_once


def reproduce_table2():
    """Rows of Table II plus the synthetic stand-in actually generated."""
    rows = []
    for entry in dataset_table():
        key = entry["key"]
        synthetic = load_dataset(key)
        rows.append(
            [
                key,
                entry["category"],
                entry["num_edges"],
                entry["num_nodes"],
                round(entry["avg_degree"], 1),
                synthetic.num_edges,
                synthetic.num_nodes,
                round(synthetic.avg_degree, 1),
            ]
        )
    return rows


def test_table2_dataset_characteristics(benchmark):
    rows = run_once(benchmark, reproduce_table2)
    print_figure(
        "Table II: dataset characteristics (paper scale vs synthetic stand-in)",
        ["dataset", "category", "edges(paper)", "nodes(paper)", "deg(paper)",
         "edges(synth)", "nodes(synth)", "deg(synth)"],
        rows,
    )
    # The synthetic stand-ins preserve the degree ordering of the originals.
    paper_deg = [DATASETS[k].avg_degree for k in DATASET_ORDER]
    synth_deg = [row[7] for row in rows]
    assert all(
        (paper_deg[i] < paper_deg[j]) == (synth_deg[i] < synth_deg[j])
        for i, j in [(0, 5), (1, 4), (2, 10)]
    )
