"""Graceful-degradation benchmark: tiered serving vs binary shedding.

Drives the same 2x-overload closed-loop client population through two
admission-controlled DynPre clusters:

* **binary** — classic predictive admission: a request whose predicted
  sojourn violates the SLO is shed outright (the ``bench_slo_control``
  regime).
* **tiered** — the same controller with a ``DegradationPolicy``: before
  shedding, admission re-prices the request's cheaper execution profile
  (half the sampled neighbours, one hop fewer) against *its own* open
  batch and, when that prediction fits the SLO, serves the request
  degraded instead of dropping it.

The comparison metric is **SLO-weighted goodput**: full-quality SLO-met
requests count 1.0, degraded SLO-met requests count ``DEGRADED_UTILITY``
(0.5), shed requests count 0 — so the tiered run only wins by converting
would-be sheds into cheap useful work, not by relabeling.

Results are written to ``BENCH_graceful_degradation.json`` at the repo
root.  The acceptance gate — tiered SLO-weighted goodput >=
``MIN_WEIGHTED_RATIO`` x binary — is enforced by the exit code (and the
pytest-benchmark entry) and wired into CI through
``benchmarks/check_perf_regression.py``.

Run standalone (``--quick`` trims the request budget) or through
pytest-benchmark like the figure benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.report import format_distribution
from repro.serving import (
    BatchScheduler,
    ClosedLoopClients,
    DegradationPolicy,
    ServingConfig,
    ShardedServiceCluster,
    SLOPolicy,
)
from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

#: Output path of the machine-readable results (repo root, tracked by PRs).
RESULT_PATH = REPO_ROOT / "BENCH_graceful_degradation.json"

#: Workload mix of the traffic: the sampling-bound Table II datasets at
#: three sampling hops.  Degradation only has headroom where the sampled
#: neighbourhood dominates the pass (k/2 and one hop fewer collapse the
#: selection count ~12x); transfer-bound workloads (e.g. AX) barely change
#: and are deliberately excluded — shedding remains the right call there.
TRACE_DATASETS = ("PH", "MV")
NUM_LAYERS = 3

#: Scheduler settings shared by both runs.
MAX_BATCH_SIZE = 4
MAX_WAIT_SECONDS = 0.005

#: Shard count of both clusters.
NUM_SHARDS = 4

#: The SLO, as a multiple of the mean single-request cost estimate.  Tight
#: (1.5x) on purpose: full-quality passes barely fit, so binary admission
#: sheds most of the overload while the ~12x-cheaper degraded profile still
#: fits comfortably — the regime quality-latency tiering exists for.
SLO_COST_MULTIPLE = 1.5

#: Offered concurrency, as a multiple of what fits within the SLO (2x = the
#: overload regime the acceptance gate is defined on).
OVERLOAD_FACTOR = 2.0

#: Utility of a degraded SLO-met request relative to a full-quality one.
DEGRADED_UTILITY = 0.5

#: The degraded execution profile: half the sampled neighbours, one hop less.
DEGRADATION = DegradationPolicy(
    k_factor=0.5, layer_drop=1, degraded_utility=DEGRADED_UTILITY
)

#: The acceptance gate: tiered SLO-weighted goodput must be at least this
#: multiple of binary shedding's on identical traffic parameters.
MIN_WEIGHTED_RATIO = 1.5

SEED = 7


def _mix() -> List[WorkloadProfile]:
    return [
        WorkloadProfile.from_dataset(key, num_layers=NUM_LAYERS)
        for key in TRACE_DATASETS
    ]


def _entry(report) -> Dict:
    latency = report.latency
    goodput = report.goodput
    return {
        "system": report.system,
        "num_shards": report.num_shards,
        "num_batches": report.num_batches,
        "makespan_seconds": round(report.makespan_seconds, 6),
        "throughput_rps": round(report.throughput_rps, 3),
        "goodput_rps": round(goodput.goodput_rps, 3),
        "weighted_goodput_rps": round(
            goodput.slo_weighted_goodput_rps(DEGRADED_UTILITY), 3
        ),
        "offered": goodput.offered,
        "served_full": goodput.served_full,
        "served_degraded": goodput.served_degraded,
        "shed": goodput.shed,
        "failed": goodput.failed,
        "slo_met_full": goodput.slo_met_full,
        "slo_met_degraded": goodput.slo_met_degraded,
        "shed_rate": round(goodput.shed_rate, 4),
        "slo_attainment": round(goodput.slo_attainment, 4),
        "conserved": goodput.offered
        == goodput.served_full + goodput.served_degraded + goodput.shed + goodput.failed,
        "latency_seconds": {
            "p50": round(latency.p50, 6),
            "p95": round(latency.p95, 6),
            "p99": round(latency.p99, 6),
            "mean": round(latency.mean, 6),
        },
    }


def run(quick: bool = False) -> Dict:
    """Execute the benchmark and return (and persist) the result document."""
    started = time.perf_counter()
    mix = _mix()
    services = build_services()
    template = services["DynPre"]
    scheduler = BatchScheduler(
        max_batch_size=MAX_BATCH_SIZE, max_wait_seconds=MAX_WAIT_SECONDS
    )

    # ---------------------------------------------------- traffic calibration
    # Identical to bench_slo_control: the merged-batch cost prices the
    # cluster's SLO-bounded concurrency, from which the 2x-overload client
    # population follows.
    mean_cost = sum(template.estimate_service_seconds(w) for w in mix) / len(mix)
    batch_cost = sum(
        template.estimate_service_seconds(w.with_batch_size(w.batch_size * MAX_BATCH_SIZE))
        for w in mix
    ) / len(mix)
    slo_seconds = SLO_COST_MULTIPLE * mean_cost
    capacity_rps = NUM_SHARDS * MAX_BATCH_SIZE / batch_cost
    num_clients = max(int(round(OVERLOAD_FACTOR * capacity_rps * slo_seconds)), 2)
    max_requests = num_clients * (2 if quick else 5)
    retry_backoff = slo_seconds / 2.0
    slo = SLOPolicy(default_slo_seconds=slo_seconds)
    print(
        f"mean cost {mean_cost * 1e3:.1f} ms | SLO {slo_seconds * 1e3:.1f} ms | "
        f"capacity ~{capacity_rps:.0f} rps | {num_clients} closed-loop clients "
        f"({OVERLOAD_FACTOR:.0f}x overload) | {max_requests} requests"
    )

    def clients() -> ClosedLoopClients:
        return ClosedLoopClients(
            mix,
            num_clients=num_clients,
            think_seconds=0.0,
            seed=SEED,
            max_requests=max_requests,
            retry_backoff_seconds=retry_backoff,
        )

    def cluster() -> ShardedServiceCluster:
        return ShardedServiceCluster(
            template, num_shards=NUM_SHARDS, scheduler=scheduler
        )

    # -------------------------------------------------------- the two runs
    binary = cluster().serve_online(
        clients(), config=ServingConfig(slo=slo, admit=True)
    )
    tiered = cluster().serve_online(
        clients(), config=ServingConfig(slo=slo, admit=True, degradation=DEGRADATION)
    )

    stats_by_label = {"binary": binary.latency, "tiered": tiered.latency}
    for label, report in (("binary", binary), ("tiered", tiered)):
        goodput = report.goodput
        print(
            f"{label:>7}: weighted goodput "
            f"{goodput.slo_weighted_goodput_rps(DEGRADED_UTILITY):7.1f} rps | "
            f"full {goodput.served_full:5d} | degraded {goodput.served_degraded:5d} | "
            f"shed {goodput.shed:5d} | "
            f"SLO attainment {goodput.slo_attainment * 100:5.1f}%"
        )

    binary_weighted = binary.goodput.slo_weighted_goodput_rps(DEGRADED_UTILITY)
    tiered_weighted = tiered.goodput.slo_weighted_goodput_rps(DEGRADED_UTILITY)
    weighted_ratio = tiered_weighted / max(binary_weighted, 1e-12)
    print(
        f"\ntiered vs binary SLO-weighted goodput: {weighted_ratio:.2f}x "
        f"(gate >= {MIN_WEIGHTED_RATIO:.1f}x)"
    )
    print("\n" + format_distribution("sojourn latency (s)", stats_by_label))

    document = {
        "benchmark": "graceful_degradation",
        "_provenance": (
            "simulated metrics from ShardedServiceCluster.serve_online (engine-"
            "independent); wall_clock_seconds is this script's total runtime on "
            "the committing machine. Regenerate with "
            "`python benchmarks/bench_graceful_degradation.py`."
        ),
        "quick": bool(quick),
        "traffic": {
            "datasets": list(TRACE_DATASETS),
            "num_clients": num_clients,
            "max_requests": max_requests,
            "think_seconds": 0.0,
            "retry_backoff_seconds": round(retry_backoff, 6),
            "seed": SEED,
            "overload_factor": OVERLOAD_FACTOR,
        },
        "scheduler": {
            "max_batch_size": MAX_BATCH_SIZE,
            "max_wait_seconds": MAX_WAIT_SECONDS,
        },
        "slo_seconds": round(slo_seconds, 6),
        "capacity_estimate_rps": round(capacity_rps, 3),
        "degradation": DEGRADATION.as_dict(),
        "degraded_utility": DEGRADED_UTILITY,
        "binary": _entry(binary),
        "tiered": _entry(tiered),
        "weighted_goodput_ratio": round(weighted_ratio, 3),
        "min_weighted_goodput_ratio": MIN_WEIGHTED_RATIO,
        "wall_clock_seconds": round(time.perf_counter() - started, 4),
    }
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(f"\nresults written to {RESULT_PATH}")
    return document


def test_graceful_degradation(benchmark):
    """Pytest-benchmark entry point with the weighted-goodput acceptance gate."""
    from common import run_once

    document = run_once(benchmark, lambda: run(quick=True))
    assert document["weighted_goodput_ratio"] >= MIN_WEIGHTED_RATIO
    assert document["binary"]["conserved"] and document["tiered"]["conserved"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller request budget (CI mode)",
    )
    args = parser.parse_args(argv)
    document = run(quick=args.quick)
    failed = False
    if document["weighted_goodput_ratio"] < MIN_WEIGHTED_RATIO:
        print(
            f"DEGRADATION REGRESSION: weighted goodput ratio "
            f"{document['weighted_goodput_ratio']:.2f}x < {MIN_WEIGHTED_RATIO:.1f}x",
            file=sys.stderr,
        )
        failed = True
    for label in ("binary", "tiered"):
        if not document[label]["conserved"]:
            print(
                f"CONSERVATION BROKEN in {label} run: "
                "offered != served_full + served_degraded + shed + failed",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
