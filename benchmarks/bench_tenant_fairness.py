"""Multi-tenant fairness benchmark: worst-tenant SLO attainment under
2x bursty overload, with the fairness subsystem on vs off.

Three tenants share one DynPre cluster under burst/diurnal open-loop
traffic (piecewise-rate Poisson, staggered phases): a heavy ``free``
tenant whose bursts alone oversubscribe the cluster, and two light
(``pro`` / ``ent``) tenants riding within their guaranteed rates.  Total
offered load is about twice the cluster's *measured* saturated
throughput.

* **fairness off** — the pre-tenancy serving stack: FIFO batch fill, no
  admission control.  The heavy tenant's bursts flood the queue and every
  tenant's sojourn blows through the SLO; worst-tenant attainment
  collapses.
* **fairness on** — the tenant subsystem of ``repro.serving``: per-tenant
  guaranteed-rate quotas with weighted shedding of overloaded excess
  traffic, weighted-fair (deficit round-robin) batch formation, and
  batching-aware admission.  The heavy tenant's excess is shed at arrival,
  the light tenants keep their guaranteed slots, and every tenant's
  *served* traffic stays close to its SLO.

The cluster's capacity is measured (a short saturated open-loop run), not
taken from the analytic estimate, so the guarantees stay conservative on
any machine and the scenario is a true 2x overload.

Results are written to ``BENCH_tenant_fairness.json`` at the repo root.
The acceptance gate — worst-tenant attainment with fairness on >= 3x the
worst-tenant attainment with fairness off — is enforced by the exit code
(and the pytest-benchmark entry), so CI fails if the fairness subsystem
regresses.

Run standalone (``--quick`` trims the request budget) or through
pytest-benchmark like the figure benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.metrics import attainment_spread, jain_fairness_index
from repro.analysis.report import format_tenant_table
from repro.serving import (
    BatchScheduler,
    BurstyArrivals,
    OpenLoopArrivals,
    ServingController,
    ShardedServiceCluster,
    SLOPolicy,
    TenantQuota,
    TraceArrivals,
    merge_traces,
)
from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

#: Output path of the machine-readable results (repo root, tracked by PRs).
RESULT_PATH = REPO_ROOT / "BENCH_tenant_fairness.json"

#: Workload mix of the traffic (same Table II mix as the other serving benches).
TRACE_DATASETS = ("PH", "AX", "MV")

#: Scheduler settings shared by both runs (weights only apply to fairness-on).
MAX_BATCH_SIZE = 4
MAX_WAIT_SECONDS = 0.005

#: Shard count of both clusters.
NUM_SHARDS = 4

#: The SLO, as a multiple of the mean single-request cost estimate.
SLO_COST_MULTIPLE = 3.0

#: Offered load as a multiple of the measured saturated throughput (2x = the
#: overload regime the acceptance gate is defined on).
OVERLOAD_FACTOR = 2.0

#: Tenant mix: (name, share of total offered load, guaranteed share of the
#: measured capacity, excess weight).  The heavy tenant offers 70% of the 2x
#: load; the light tenants stay within their guarantees.
TENANT_MIX = (
    ("free", 0.70, 0.10, 1.0),
    ("pro", 0.15, 0.125, 2.0),
    ("ent", 0.15, 0.125, 2.0),
)

#: Burst/diurnal envelope of every tenant stream (phases staggered).
PERIOD_SECONDS = 0.5
BURST_FRACTION = 0.25
BASE_RATE_SHARE = 0.4  # base rate as a fraction of the stream's mean rate

#: The acceptance gate: worst-tenant attainment with fairness on must be at
#: least this multiple of the fairness-off worst-tenant attainment.
MIN_WORST_ATTAINMENT_RATIO = 3.0

SEED = 11


def _mix() -> List[WorkloadProfile]:
    return [WorkloadProfile.from_dataset(key) for key in TRACE_DATASETS]


def _measure_capacity(template, scheduler, num_requests: int) -> float:
    """Saturated throughput of the cluster on this mix (requests/second)."""
    mix = _mix()
    estimate = sum(template.estimate_service_seconds(w) for w in mix) / len(mix)
    saturating_rate = 20.0 / estimate  # far beyond capacity: pure backlog
    cluster = ShardedServiceCluster(
        template, num_shards=NUM_SHARDS, scheduler=scheduler
    )
    trace = OpenLoopArrivals(mix, rate_rps=saturating_rate, seed=SEED).trace(
        num_requests
    )
    return cluster.serve_trace(trace).throughput_rps


def _bursty_trace(total_rate: float, num_requests: int):
    """Merged multi-tenant bursty trace at ``total_rate`` mean offered rps."""
    mix = _mix()
    streams = []
    budgets = []
    for i, (tenant, share, _, _) in enumerate(TENANT_MIX):
        mean = share * total_rate
        base = BASE_RATE_SHARE * mean
        peak = (mean - (1.0 - BURST_FRACTION) * base) / BURST_FRACTION
        streams.append(
            BurstyArrivals(
                mix,
                base_rate_rps=base,
                peak_rate_rps=peak,
                period_seconds=PERIOD_SECONDS,
                burst_fraction=BURST_FRACTION,
                phase_seconds=i * PERIOD_SECONDS / len(TENANT_MIX),
                tenant=tenant,
                seed=SEED + i,
            )
        )
        budgets.append(max(int(round(share * num_requests)), 1))
    return merge_traces(
        [stream.trace(budget) for stream, budget in zip(streams, budgets)]
    )


def _entry(report) -> Dict:
    goodput = report.goodput
    tenants = {
        tenant: {
            "offered": stats.offered,
            "served": stats.served,
            "shed": stats.shed,
            "shed_rate": round(stats.shed_rate, 4),
            "slo_attainment": round(stats.slo_attainment, 4),
            "p95_seconds": round(stats.latency.p95, 6),
        }
        for tenant, stats in report.tenant_stats.items()
    }
    worst = min(
        (stats.slo_attainment for stats in report.tenant_stats.values()),
        default=0.0,
    )
    return {
        "system": report.system,
        "num_shards": report.num_shards,
        "throughput_rps": round(report.throughput_rps, 3),
        "goodput_rps": round(goodput.goodput_rps, 3),
        "shed_rate": round(goodput.shed_rate, 4),
        "slo_attainment": round(goodput.slo_attainment, 4),
        "worst_tenant_attainment": round(worst, 4),
        "attainment_spread": round(
            min(attainment_spread(report.tenant_stats.values()), 1e9), 3
        ),
        "jain_attainment_index": round(
            jain_fairness_index(
                [stats.slo_attainment for stats in report.tenant_stats.values()]
            ),
            4,
        ),
        "tenants": tenants,
    }


def run(quick: bool = False) -> Dict:
    """Execute the benchmark and return (and persist) the result document."""
    started = time.perf_counter()
    mix = _mix()
    services = build_services()
    template = services["DynPre"]
    scheduler_off = BatchScheduler(
        max_batch_size=MAX_BATCH_SIZE, max_wait_seconds=MAX_WAIT_SECONDS
    )

    mean_cost = sum(template.estimate_service_seconds(w) for w in mix) / len(mix)
    slo_seconds = SLO_COST_MULTIPLE * mean_cost
    capacity_rps = _measure_capacity(
        template, scheduler_off, num_requests=200 if quick else 500
    )
    total_rate = OVERLOAD_FACTOR * capacity_rps
    num_requests = 400 if quick else 1000
    trace = _bursty_trace(total_rate, num_requests)
    print(
        f"measured capacity ~{capacity_rps:.0f} rps | SLO {slo_seconds * 1e3:.1f} ms | "
        f"offered {trace.offered_rate_rps:.0f} rps "
        f"({trace.offered_rate_rps / capacity_rps:.2f}x) | {len(trace)} requests"
    )

    # ------------------------------------------------------- fairness off
    off_cluster = ShardedServiceCluster(
        template, num_shards=NUM_SHARDS, scheduler=scheduler_off
    )
    slo_off = SLOPolicy(default_slo_seconds=slo_seconds)
    fairness_off = off_cluster.serve_online(TraceArrivals(trace), slo=slo_off)

    # -------------------------------------------------------- fairness on
    tenant_weights = {tenant: weight for tenant, _, _, weight in TENANT_MIX}
    scheduler_on = BatchScheduler(
        max_batch_size=MAX_BATCH_SIZE,
        max_wait_seconds=MAX_WAIT_SECONDS,
        tenant_weights=tenant_weights,
    )
    slo_on = SLOPolicy(
        default_slo_seconds=slo_seconds,
        per_tenant={
            tenant: TenantQuota(
                guaranteed_rps=guarantee_share * capacity_rps, weight=weight
            )
            for tenant, _, guarantee_share, weight in TENANT_MIX
        },
    )
    on_cluster = ShardedServiceCluster(
        template, num_shards=NUM_SHARDS, scheduler=scheduler_on
    )
    fairness_on = ServingController(
        on_cluster, slo=slo_on, batch_aware=True
    ).serve(TraceArrivals(trace))

    for label, report in (("fairness off", fairness_off), ("fairness on", fairness_on)):
        print("\n" + format_tenant_table(f"{label}: per-tenant accounting",
                                         report.tenant_stats))

    off_entry = _entry(fairness_off)
    on_entry = _entry(fairness_on)
    worst_ratio = on_entry["worst_tenant_attainment"] / max(
        off_entry["worst_tenant_attainment"], 1e-9
    )
    print(
        f"\nworst-tenant attainment: fairness on {on_entry['worst_tenant_attainment']:.3f} "
        f"vs off {off_entry['worst_tenant_attainment']:.3f} -> {worst_ratio:.1f}x "
        f"(gate >= {MIN_WORST_ATTAINMENT_RATIO:.1f}x)"
    )

    document = {
        "benchmark": "tenant_fairness",
        "_provenance": (
            "simulated metrics from ShardedServiceCluster.serve_online (engine-"
            "independent); capacity_rps is measured on the committing machine's "
            "simulation (deterministic), wall_clock_seconds is this script's "
            "total runtime. Regenerate with "
            "`python benchmarks/bench_tenant_fairness.py`."
        ),
        "quick": bool(quick),
        "traffic": {
            "datasets": list(TRACE_DATASETS),
            "num_requests": len(trace),
            "offered_rate_rps": round(trace.offered_rate_rps, 3),
            "overload_factor": OVERLOAD_FACTOR,
            "period_seconds": PERIOD_SECONDS,
            "burst_fraction": BURST_FRACTION,
            "tenant_mix": [
                {
                    "tenant": tenant,
                    "offered_share": share,
                    "guaranteed_capacity_share": guarantee,
                    "weight": weight,
                }
                for tenant, share, guarantee, weight in TENANT_MIX
            ],
            "seed": SEED,
        },
        "scheduler": {
            "max_batch_size": MAX_BATCH_SIZE,
            "max_wait_seconds": MAX_WAIT_SECONDS,
        },
        "slo_seconds": round(slo_seconds, 6),
        "capacity_rps": round(capacity_rps, 3),
        "fairness_off": off_entry,
        "fairness_on": on_entry,
        "worst_attainment_ratio": round(worst_ratio, 3),
        "min_worst_attainment_ratio": MIN_WORST_ATTAINMENT_RATIO,
        "wall_clock_seconds": round(time.perf_counter() - started, 4),
    }
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(f"\nresults written to {RESULT_PATH}")
    return document


def test_tenant_fairness(benchmark):
    """Pytest-benchmark entry point with the fairness acceptance gate."""
    from common import run_once

    document = run_once(benchmark, lambda: run(quick=True))
    assert document["worst_attainment_ratio"] >= MIN_WORST_ATTAINMENT_RATIO


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller request budget (CI mode)",
    )
    args = parser.parse_args(argv)
    document = run(quick=args.quick)
    if document["worst_attainment_ratio"] < document["min_worst_attainment_ratio"]:
        print(
            f"FAIRNESS REGRESSION: worst-tenant attainment ratio "
            f"{document['worst_attainment_ratio']:.2f}x < "
            f"{MIN_WORST_ATTAINMENT_RATIO:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
