"""Fig. 29: update behaviour of dynamic graphs (critical ratio and time series)."""

from repro.graph.datasets import load_dataset
from repro.graph.dynamic import DAILY_GROWTH_RATE, GraphUpdateStream, critical_update_ratio

from common import print_figure, run_once

#: Datasets of Fig. 29a: SO/TB add low-connectivity vertices, JR/AM highly
#: connected ones.
CRITICAL_DATASETS = ["SO", "TB", "JR", "AM"]
LAYERS = [1, 2, 3, 4]

#: Scaled-down synthetic stand-ins keep the influence analysis tractable.
SCALE = 1.0 / 20000.0

#: Hours simulated for the per-hour update-ratio time-series (Fig. 29b).
HOURS = 24


def reproduce_fig29a():
    """Minimum update ratio whose influence reaches half the graph, per layer."""
    rows = []
    for key in CRITICAL_DATASETS:
        graph = load_dataset(key, scale=SCALE)
        row = [key, graph.num_edges]
        for layers in LAYERS:
            ratio = critical_update_ratio(graph, num_layers=layers, steps=5)
            row.append(round(100 * ratio, 3))
        rows.append(row)
    return rows


def reproduce_fig29b():
    """Per-hour edge-update ratio of the SO and TB growth streams."""
    rows = []
    for key in ("SO", "TB"):
        graph = load_dataset(key, scale=SCALE)
        hourly_rate = DAILY_GROWTH_RATE[key] / 24.0
        stream = GraphUpdateStream(graph, growth_rate=hourly_rate, seed=1)
        total_edges = graph.num_edges
        ratios = []
        for batch in stream.generate(HOURS):
            ratios.append(100 * batch.num_edges / total_edges)
            total_edges += batch.num_edges
        two_hour = sum(ratios) / len(ratios) * 2
        rows.append([key, round(ratios[0], 4), round(ratios[-1], 4), round(two_hour, 4)])
    return rows


def test_fig29_graph_updates(benchmark):
    def run():
        return reproduce_fig29a(), reproduce_fig29b()

    fig_a, fig_b = run_once(benchmark, run)
    print_figure(
        "Fig. 29a: critical update ratio (%) vs layer count (paper: services rebuild"
        " at a 0.5% update ratio)",
        ["dataset", "edges(synth)"] + [f"layer_{l}" for l in LAYERS],
        fig_a,
    )
    print_figure(
        "Fig. 29b: hourly edge-update ratio (%) (paper: ~0.74% of the graph changes"
        " every two hours)",
        ["dataset", "first_hour_%", "last_hour_%", "avg_per_2h_%"],
        fig_b,
    )
    # Deeper GNNs are perturbed by smaller updates (monotone non-increasing).
    for row in fig_a:
        ratios = row[2:]
        assert ratios[-1] <= ratios[0] + 1e-6
    # The modelled growth produces sub-percent hourly update ratios.
    for row in fig_b:
        assert 0.0 < row[3] < 5.0
