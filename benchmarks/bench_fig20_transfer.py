"""Fig. 20: data-transfer overhead of GPU, FPGA-sampler and AutoPre."""

from repro.baselines.fpga_sampler import FPGASamplerSystem
from repro.baselines.gpu import GPUPreprocessingSystem
from repro.system.variants import AutoPreSystem

from common import all_workloads, print_figure, run_once


def reproduce_fig20():
    """Average transfer latency per pass for the three systems."""
    systems = {
        "GPU": GPUPreprocessingSystem(),
        "FPGA": FPGASamplerSystem(),
        "AutoPre": AutoPreSystem(),
    }
    rows = []
    sums = {name: 0.0 for name in systems}
    workloads = all_workloads()
    for key, workload in workloads.items():
        row = [key]
        for name, system in systems.items():
            transfer = system.evaluate(workload).transfers.total
            sums[name] += transfer
            row.append(round(transfer * 1e3, 3))
        rows.append(row)
    n = len(workloads)
    averages = {name: sums[name] / n for name in systems}
    rows.append(
        [
            "avg",
            round(averages["GPU"] * 1e3, 3),
            round(averages["FPGA"] * 1e3, 3),
            round(averages["AutoPre"] * 1e3, 3),
        ]
    )
    rows.append(
        [
            "reduction vs AutoPre",
            round(averages["GPU"] / averages["AutoPre"], 1),
            round(averages["FPGA"] / averages["AutoPre"], 1),
            1.0,
        ]
    )
    return rows


def test_fig20_transfer_overhead(benchmark):
    rows = run_once(benchmark, reproduce_fig20)
    print_figure(
        "Fig. 20: transfer overhead in ms (paper: AutoPre cuts transfers by 13.6x vs GPU"
        " and 20x vs FPGA)",
        ["dataset", "GPU_ms", "FPGA_ms", "AutoPre_ms"],
        rows,
    )
    reduction_vs_gpu, reduction_vs_fpga = rows[-1][1], rows[-1][2]
    assert reduction_vs_gpu > 3.0
    assert reduction_vs_fpga > reduction_vs_gpu
