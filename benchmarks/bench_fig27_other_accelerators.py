"""Fig. 27: comparison against existing single-function accelerators."""

from repro.baselines.other_accels import (
    OTHER_ACCELERATORS,
    AcceleratorDeployment,
    SingleFunctionAccelerator,
)
from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

from common import print_figure, run_once

DATASET = "AM"


def reproduce_fig27():
    """Normalised preprocessing+transfer latency of Pure/SCR/Auto/DynPre."""
    workload = WorkloadProfile.from_dataset(DATASET)
    rows = []
    ladder_totals = {"pure": [], "scr": [], "auto": []}
    for spec in OTHER_ACCELERATORS:
        totals = {}
        for deployment in AcceleratorDeployment:
            system = SingleFunctionAccelerator(spec, deployment)
            totals[deployment.value] = system.evaluate(workload).total
            ladder_totals[deployment.value].append(totals[deployment.value])
        pure = totals["pure"]
        rows.append(
            [
                spec.key,
                spec.stage,
                1.0,
                round(pure / totals["scr"], 2),
                round(pure / totals["auto"], 2),
            ]
        )
    dyn = build_services()["DynPre"]
    dyn.serve(workload)
    dynpre_total = dyn.serve(workload).system_latency.total
    avg_pure = sum(ladder_totals["pure"]) / len(ladder_totals["pure"])
    rows.append(["DynPre", "end-to-end", round(avg_pure / dynpre_total, 2), "", ""])
    return rows


def test_fig27_other_accelerators(benchmark):
    rows = run_once(benchmark, reproduce_fig27)
    print_figure(
        "Fig. 27 (AM): speedup over each accelerator's Pure deployment"
        " (paper: SCR 1.7x, Auto 3.3x, DynPre 4.5x)",
        ["accelerator", "stage", "Pure", "with_SCR", "Auto"],
        rows,
    )
    for row in rows[:-1]:
        assert row[3] >= 1.0  # adding the SCR never hurts
        assert row[4] >= row[3] * 0.95  # going end-to-end on the FPGA helps further
    # DynPre beats the average Pure deployment by a healthy margin.
    assert rows[-1][2] > 1.5
