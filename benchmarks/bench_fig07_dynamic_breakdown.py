"""Fig. 7: latency breakdown of dynamic graphs (SO, TB) as they grow over time."""

from repro.analysis.metrics import breakdown_percentages
from repro.baselines.calibration import GPU_CALIBRATION
from repro.baselines.cpu import software_task_latencies
from repro.gnn.inference import InferenceLatencyModel
from repro.graph.dynamic import DAILY_GROWTH_RATE
from repro.system.workload import WorkloadProfile

from common import print_figure, run_once

#: Days simulated and sampling interval (the paper plots ~2000 days).
HORIZON_DAYS = 2000
STEP_DAYS = 250


def reproduce_fig7(dataset: str):
    """Component share of end-to-end service time as the graph grows daily."""
    base = WorkloadProfile.from_dataset(dataset)
    growth = DAILY_GROWTH_RATE[dataset]
    inference_model = InferenceLatencyModel()
    rows = []
    for day in range(0, HORIZON_DAYS + 1, STEP_DAYS):
        scale = (1.0 + growth) ** day
        workload = base.scaled_edges(scale)
        tasks = software_task_latencies(workload, GPU_CALIBRATION)
        inference = inference_model.latency_from_counts(
            workload.sampled_nodes, workload.sampled_edges,
            hidden_dim=workload.feature_dim, num_layers=workload.num_layers,
        )
        components = dict(tasks.as_dict())
        components["inference"] = inference
        pct = breakdown_percentages(components)
        rows.append(
            [
                day,
                round(pct["ordering"], 1),
                round(pct["reshaping"], 1),
                round(pct["selecting"], 1),
                round(pct["reindexing"], 1),
                round(pct["inference"], 1),
            ]
        )
    return rows


def test_fig07_dynamic_breakdown(benchmark):
    def run():
        return {ds: reproduce_fig7(ds) for ds in ("SO", "TB")}

    results = run_once(benchmark, run)
    for dataset, rows in results.items():
        print_figure(
            f"Fig. 7 ({dataset}): service-time breakdown over days of graph growth",
            ["day", "ordering_%", "reshaping_%", "selecting_%", "reindexing_%", "inference_%"],
            rows,
        )
    for dataset, rows in results.items():
        first, last = rows[0], rows[-1]
        # Reshaping's share rises as the graph grows, selection's share falls
        # (it is bounded by the fixed k), matching the paper's crossover.
        assert last[2] > first[2]
        assert last[4] <= first[4]
