"""Table I: analytic cost functions of the preprocessing tasks."""

from repro.core.config import scaled_default_config
from repro.core.cost_model import CostModel, WorkloadParams
from repro.graph.datasets import DATASET_ORDER, DATASETS

from common import print_figure, run_once


def reproduce_table1():
    """Evaluate the Table I cost functions for every dataset on the default HW."""
    model = CostModel()
    config = scaled_default_config()
    rows = []
    for key in DATASET_ORDER:
        info = DATASETS[key]
        workload = WorkloadParams(
            num_nodes=info.num_nodes, num_edges=info.num_edges, num_layers=2, k=10, batch_size=3000
        )
        est = model.estimate(workload, config)
        rows.append(
            [
                key,
                int(est.ordering_cycles),
                int(est.selecting_cycles),
                int(est.reshaping_cycles),
                int(est.reindexing_cycles),
                round(est.latency_seconds() * 1e3, 3),
            ]
        )
    return rows


def test_table1_cost_functions(benchmark):
    rows = run_once(benchmark, reproduce_table1)
    print_figure(
        "Table I: cost-model cycle estimates (default configuration)",
        ["dataset", "ordering", "selecting", "reshaping", "reindexing", "latency_ms"],
        rows,
    )
    # Ordering and reshaping estimates grow with edge count across datasets.
    ordering = {row[0]: row[1] for row in rows}
    assert ordering["TB"] > ordering["PH"]
