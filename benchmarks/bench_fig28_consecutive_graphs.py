"""Fig. 28: consecutive inference over diverse graphs (MV then SO, graph pairs)."""

from repro.core.bitstream import generate_bitstream_library
from repro.system.variants import DynPreSystem, StatPreSystem, tuned_config_for
from repro.system.workload import WorkloadProfile

from common import print_figure, run_once

#: Graph pairs of Fig. 28b: same-category pairs first, cross-category pairs last.
SIMILAR_PAIRS = [("AX", "CL"), ("YL", "FR"), ("RD", "SO"), ("SO", "JR")]
DIFFERENT_PAIRS = [("PH", "RD"), ("AX", "JR"), ("FR", "JR"), ("FR", "AM")]

#: Number of consecutive inference passes served on each graph of the MV->SO
#: scenario (the paper streams requests for ~150 s per graph).
PASSES_PER_GRAPH = 50


def _fresh_systems():
    library = generate_bitstream_library()
    mv_config = tuned_config_for(WorkloadProfile.from_dataset("MV"), library)
    stat = StatPreSystem(config=mv_config)
    dyn = DynPreSystem(library=library, config=mv_config)
    return stat, dyn


def reproduce_fig28a():
    """Total preprocessing time of the MV-then-SO request stream."""
    stat, dyn = _fresh_systems()
    totals = {"StatPre": 0.0, "DynPre": 0.0}
    rows = []
    for dataset in ("MV", "SO"):
        workload = WorkloadProfile.from_dataset(dataset)
        stat_time = sum(stat.evaluate(workload).total for _ in range(PASSES_PER_GRAPH))
        dyn_time = sum(dyn.evaluate(workload).total for _ in range(PASSES_PER_GRAPH))
        totals["StatPre"] += stat_time
        totals["DynPre"] += dyn_time
        rows.append(
            [dataset, round(stat_time, 3), round(dyn_time, 3),
             round(PASSES_PER_GRAPH / stat_time, 1), round(PASSES_PER_GRAPH / dyn_time, 1)]
        )
    reduction = 100 * (1 - totals["DynPre"] / totals["StatPre"])
    rows.append(["total", round(totals["StatPre"], 3), round(totals["DynPre"], 3), "", ""])
    return rows, reduction


def reproduce_fig28b():
    """Per-pass preprocessing latency of graph pairs, StatPre (fixed) vs DynPre.

    Each pair serves a stream of requests per graph, so DynPre's one-off
    reconfiguration is amortised and the comparison is between steady-state
    passes (the paper's Fig. 28b normalises per-request latency the same way).
    """
    rows = []
    for label, pairs in (("similar", SIMILAR_PAIRS), ("different", DIFFERENT_PAIRS)):
        for a, b in pairs:
            stat, dyn = _fresh_systems()
            stat_total = 0.0
            dyn_total = 0.0
            for dataset in (a, b):
                workload = WorkloadProfile.from_dataset(dataset)
                stat_total += stat.evaluate(workload).total
                dyn.evaluate(workload)  # adapt to the new graph
                dyn_total += dyn.evaluate(workload).total
            rows.append(
                [f"{a}_{b}", label, round(stat_total * 1e3, 1), round(dyn_total * 1e3, 1),
                 round(100 * dyn_total / stat_total, 1)]
            )
    return rows


def test_fig28_consecutive_diverse_graphs(benchmark):
    def run():
        return reproduce_fig28a(), reproduce_fig28b()

    (fig_a, reduction), fig_b = run_once(benchmark, run)
    print_figure(
        "Fig. 28a: MV then SO request stream (paper: DynPre reduces total"
        f" preprocessing time by 56%; measured reduction {reduction:.1f}%)",
        ["graph", "StatPre_s", "DynPre_s", "StatPre_inf/s", "DynPre_inf/s"],
        fig_a,
    )
    print_figure(
        "Fig. 28b: graph pairs, DynPre latency as % of StatPre (paper: 85.4% similar,"
        " 53.9% different)",
        ["pair", "category", "StatPre_ms", "DynPre_ms", "DynPre_%_of_StatPre"],
        fig_b,
    )
    # DynPre never loses to the fixed configuration over a request stream
    # (in this reproduction the device-DRAM bandwidth bound compresses the
    # reconfiguration gains, so the reduction is smaller than the paper's 56%).
    assert reduction >= -1.0
    assert all(row[4] <= 101.0 for row in fig_b)
