"""Failure-domain benchmark: goodput under a rack outage, domain-aware
placement vs domain-oblivious placement.

A 6-shard DynPre cluster (three racks of two shards,
``ClusterTopology.uniform(6, 3)``) serves open-loop traffic at ~2x its
*measured* saturated throughput while whole racks black out mid-run: rack0
goes down early and stays down for most of the run, and rack1 fails while
rack0 is still dark (the correlated double hit).  Both runs see the exact
same arrivals and the exact same expanded fault schedule; only placement
differs:

* **domain-oblivious** — ``topology=None``: the autoscaler's active prefix
  fills shard ids in order, so the 2-shard steady state is ``{0, 1}`` —
  *both* in rack0.  The rack0 outage takes out the entire active set at one
  instant; fault-time substitution walks the dense order onto rack1, and
  the second hit takes the substitutes down too (the correlated-failure
  death march).
* **domain-aware** — ``topology=..., placement="spread"``: the activation
  order round-robins across racks, so the same 2-shard steady state spans
  two racks and each rack outage clips at most one active shard; standby
  substitution prefers shards in racks with no scheduled outage in flight.

The acceptance gate — domain-aware goodput >= 1.2x domain-oblivious
goodput — is enforced by the exit code and the pytest-benchmark entry, and
CI re-checks it against the committed baseline via
``check_perf_regression.py``.

A second section stress-tests the correlated generator: a bursty trace
through the autoscaled online loop under ``RandomFaults(correlated=...)``
whole-rack outages, asserting exact conservation
(offered == served + shed + failed) and that the report's per-domain
outage section saw the blackouts.  The result JSON embeds the generator's
:meth:`~repro.serving.faults.RandomFaults.provenance` dict and the
deterministic outage schedule under ``_provenance`` so the exact schedules
can be rebuilt from the artifact alone.

Results are written to ``BENCH_failure_domains.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.serving import (
    Autoscaler,
    BatchScheduler,
    BurstyArrivals,
    ClusterTopology,
    CorrelatedFaults,
    DomainFaultEvent,
    FAULT_CRASH_DOMAIN,
    FAULT_RECOVER_DOMAIN,
    FaultSchedule,
    OpenLoopArrivals,
    RandomFaults,
    ServingConfig,
    ShardedServiceCluster,
    SLOPolicy,
    TraceArrivals,
)
from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

#: Output path of the machine-readable results (repo root, tracked by PRs).
RESULT_PATH = REPO_ROOT / "BENCH_failure_domains.json"

#: Workload mix of the traffic (same Table II mix as the other serving benches).
TRACE_DATASETS = ("PH", "AX", "MV")

#: Scheduler settings shared by both runs.
MAX_BATCH_SIZE = 4
MAX_WAIT_SECONDS = 0.005

#: Shard and rack counts: three racks of two shards.
NUM_SHARDS = 6
NUM_DOMAINS = 3

#: The SLO, as a multiple of the mean single-request cost estimate.  Tight
#: enough that work delayed by an in-flight kill (retry backoff plus a
#: re-queue behind the substituted shards' backlog) misses it — that is the
#: damage channel the placement gate measures.
SLO_COST_MULTIPLE = 2.0

#: Offered load as a multiple of the measured saturated throughput (2x = the
#: overload regime the acceptance gate is defined on).
OVERLOAD_FACTOR = 2.0

#: Rack outage cycles as fractions of the trace horizon.  Each hit kills
#: the in-flight batches of every *active* shard in the rack, and both
#: placements substitute dead slots with live standbys, so steady-state
#: live capacity is identical — the differential is pure blast radius.
#: Every cycle chains rack0 then rack1: the dense prefix keeps both active
#: slots in rack0, loses both in-flight batches to the rack0 crash,
#: re-concentrates into rack1 (the next shard ids) and loses both again
#: when rack1 follows — four kills and two wholesale queue migrations per
#: cycle, versus one kill per crash for the spread placement, whose
#: healthy-domain-first substitution backfills into rack2 instead.
#: rack2's lone hit lands in a healthy gap (a recorded outage with no
#: active shard on either placement).
DOMAIN_OUTAGES = (
    ("rack0", tuple((0.05 + 0.20 * i, 0.15 + 0.20 * i) for i in range(5))),
    ("rack1", tuple((0.10 + 0.20 * i, 0.20 + 0.20 * i) for i in range(5))),
    ("rack2", ((0.965, 0.985),)),
)

#: Retry policy of both schedules: one retry, so a batch killed twice by
#: back-to-back rack hits fails terminally.
RETRY_BUDGET = 1

#: The acceptance gate: domain-aware goodput must be at least this multiple
#: of the domain-oblivious goodput on the identical run.
MIN_DOMAIN_GOODPUT_RATIO = 1.2

#: Autoscaler bounds shared by both runs (the 2-shard steady state is what
#: makes placement matter: dense packs it into one rack).
MIN_ACTIVE_SHARDS = 2

#: Stress section: request budget and overload of the correlated-fault run.
STRESS_REQUESTS = 50_000
STRESS_REQUESTS_QUICK = 5_000
STRESS_OVERLOAD = 1.2

SEED = 23


def _mix() -> List[WorkloadProfile]:
    return [WorkloadProfile.from_dataset(key) for key in TRACE_DATASETS]


def _scheduler() -> BatchScheduler:
    return BatchScheduler(max_batch_size=MAX_BATCH_SIZE, max_wait_seconds=MAX_WAIT_SECONDS)


def _topology() -> ClusterTopology:
    return ClusterTopology.uniform(NUM_SHARDS, NUM_DOMAINS)


def _measure_capacity(template, num_requests: int) -> float:
    """Saturated throughput of the *active* shard set (requests/second).

    The autoscaler pins ``MIN_ACTIVE_SHARDS`` active shards, so the 2x
    overload regime is defined against that steady-state capacity, not the
    full provisioned cluster's.
    """
    mix = _mix()
    estimate = sum(template.estimate_service_seconds(w) for w in mix) / len(mix)
    saturating_rate = 20.0 / estimate  # far beyond capacity: pure backlog
    cluster = ShardedServiceCluster(
        template, num_shards=MIN_ACTIVE_SHARDS, scheduler=_scheduler()
    )
    trace = OpenLoopArrivals(mix, rate_rps=saturating_rate, seed=SEED).trace(num_requests)
    return cluster.serve_trace(trace).throughput_rps


def _outage_schedule(horizon_seconds: float) -> FaultSchedule:
    """The cycling whole-rack outage schedule over ``horizon_seconds``."""
    events = []
    for domain, cycles in DOMAIN_OUTAGES:
        for crash_frac, recover_frac in cycles:
            events.append(
                DomainFaultEvent(crash_frac * horizon_seconds, domain, FAULT_CRASH_DOMAIN)
            )
            events.append(
                DomainFaultEvent(
                    recover_frac * horizon_seconds, domain, FAULT_RECOVER_DOMAIN
                )
            )
    return FaultSchedule(
        domain_events=tuple(events),
        topology=_topology(),
        retry_budget=RETRY_BUDGET,
        retry_backoff_seconds=0.03 * horizon_seconds,
    )


def _entry(report) -> Dict:
    goodput = report.goodput
    faults = report.faults
    domains = faults.domains or () if faults is not None else ()
    return {
        "system": report.system,
        "num_shards": report.num_shards,
        "offered": goodput.offered,
        "served": goodput.served,
        "shed": goodput.shed,
        "failed": goodput.failed,
        "throughput_rps": round(report.throughput_rps, 3),
        "goodput_rps": round(goodput.goodput_rps, 3),
        "slo_attainment": round(goodput.slo_attainment, 4),
        "migrated": faults.migrated if faults is not None else 0,
        "retried": faults.retried if faults is not None else 0,
        "domain_outages": sum(stats.outages for stats in domains),
        "domain_outage_seconds": round(
            sum(stats.outage_seconds for stats in domains), 6
        ),
        "scaling_events": len(report.scaling_timeline),
    }


def run(quick: bool = False) -> Dict:
    """Execute the benchmark and return (and persist) the result document."""
    started = time.perf_counter()
    mix = _mix()
    services = build_services()
    template = services["DynPre"]
    topology = _topology()

    mean_cost = sum(template.estimate_service_seconds(w) for w in mix) / len(mix)
    slo_seconds = SLO_COST_MULTIPLE * mean_cost
    capacity_rps = _measure_capacity(template, num_requests=200 if quick else 500)
    total_rate = OVERLOAD_FACTOR * capacity_rps
    num_requests = 400 if quick else 1000
    trace = OpenLoopArrivals(mix, rate_rps=total_rate, seed=SEED).trace(num_requests)
    horizon = trace[-1].arrival_seconds
    schedule = _outage_schedule(horizon)
    print(
        f"measured capacity ~{capacity_rps:.0f} rps | SLO {slo_seconds * 1e3:.1f} ms | "
        f"offered {trace.offered_rate_rps:.0f} rps "
        f"({trace.offered_rate_rps / capacity_rps:.2f}x) | {len(trace)} requests | "
        f"horizon {horizon:.3f}s | racks {topology.as_dict()}"
    )

    def serve(domain_aware: bool):
        cluster = ShardedServiceCluster(
            template,
            num_shards=NUM_SHARDS,
            scheduler=_scheduler(),
            topology=topology if domain_aware else None,
            placement="spread",
        )
        slo = SLOPolicy(default_slo_seconds=slo_seconds)
        return cluster.serve_online(
            TraceArrivals(trace),
            config=ServingConfig(
                slo=slo,
                admit=True,
                autoscaler=Autoscaler(
                    min_shards=MIN_ACTIVE_SHARDS, max_shards=MIN_ACTIVE_SHARDS,
                    scale_up_depth=4.0, scale_down_depth=0.5,
                    hysteresis_observations=3,
                ),
                faults=schedule,
            ),
        )

    oblivious = serve(domain_aware=False)
    aware = serve(domain_aware=True)

    oblivious_entry = _entry(oblivious)
    aware_entry = _entry(aware)
    for label, entry in (
        ("domain-oblivious", oblivious_entry),
        ("domain-aware", aware_entry),
    ):
        print(
            f"{label:>17}: goodput {entry['goodput_rps']:8.1f} rps | "
            f"served {entry['served']:4d} | shed {entry['shed']:4d} | "
            f"failed {entry['failed']:4d} | migrated {entry['migrated']:3d} | "
            f"retried {entry['retried']:3d} | rack outages {entry['domain_outages']}"
        )
    goodput_ratio = aware_entry["goodput_rps"] / max(
        oblivious_entry["goodput_rps"], 1e-9
    )
    print(
        f"\ndomain-aware goodput {aware_entry['goodput_rps']:.1f} rps vs oblivious "
        f"{oblivious_entry['goodput_rps']:.1f} rps -> {goodput_ratio:.2f}x "
        f"(gate >= {MIN_DOMAIN_GOODPUT_RATIO:.1f}x)"
    )

    # ----------------------------------------- correlated-fault stress section
    stress_requests = STRESS_REQUESTS_QUICK if quick else STRESS_REQUESTS
    stress_rate = STRESS_OVERLOAD * capacity_rps
    stress_trace = BurstyArrivals(
        mix,
        base_rate_rps=0.5 * stress_rate,
        peak_rate_rps=2.5 * stress_rate,
        period_seconds=0.5,
        burst_fraction=0.25,
        seed=SEED + 1,
    ).trace(stress_requests)
    stress_horizon = stress_trace[-1].arrival_seconds
    stress_generator = RandomFaults(
        num_shards=NUM_SHARDS,
        horizon_seconds=stress_horizon,
        mean_uptime_seconds=0.3 * stress_horizon,
        mean_downtime_seconds=0.05 * stress_horizon,
        slowdown_probability=0.25,
        slowdown_factor=2.0,
        retry_budget=RETRY_BUDGET,
        retry_backoff_seconds=0.001 * stress_horizon,
        seed=SEED,
        topology=topology,
        correlated=CorrelatedFaults(
            mean_uptime_seconds=0.25 * stress_horizon,
            mean_downtime_seconds=0.06 * stress_horizon,
        ),
    )
    stress_faults = stress_generator.schedule()
    slo = SLOPolicy(default_slo_seconds=slo_seconds)
    stress_cluster = ShardedServiceCluster(
        template, num_shards=NUM_SHARDS, scheduler=_scheduler(),
        topology=topology, placement="spread",
    )
    stress_started = time.perf_counter()
    stress_report = stress_cluster.serve_online(
        TraceArrivals(stress_trace),
        config=ServingConfig(
            slo=slo,
            admit=True,
            record_decisions=False,
            autoscaler=Autoscaler(
                min_shards=MIN_ACTIVE_SHARDS, max_shards=NUM_SHARDS,
                scale_up_depth=4.0, scale_down_depth=0.5,
                hysteresis_observations=3,
            ),
            faults=stress_faults,
        ),
    )
    stress_seconds = time.perf_counter() - stress_started
    stress_goodput = stress_report.goodput
    conserved = stress_goodput.offered == (
        stress_goodput.served + stress_goodput.shed + stress_goodput.failed
    )
    if not conserved:
        raise AssertionError(
            f"conservation violated in stress run: offered {stress_goodput.offered} "
            f"!= served {stress_goodput.served} + shed {stress_goodput.shed} "
            f"+ failed {stress_goodput.failed}"
        )
    stress_domains = stress_report.faults.domains or ()
    stress_outages = sum(stats.outages for stats in stress_domains)
    print(
        f"\nstress: {len(stress_trace)} bursty requests, "
        f"{len(stress_faults.expanded_events)} fault events "
        f"({len(stress_faults.domain_events)} domain macros), autoscaled "
        f"{MIN_ACTIVE_SHARDS}..{NUM_SHARDS} shards in {stress_seconds:.2f}s wall | "
        f"served {stress_goodput.served} + shed {stress_goodput.shed} + failed "
        f"{stress_goodput.failed} == offered {stress_goodput.offered} | "
        f"{stress_outages} whole-rack outages observed"
    )

    document = {
        "benchmark": "failure_domains",
        "_provenance": {
            "note": (
                "simulated metrics from ShardedServiceCluster.serve_online "
                "(engine-independent); capacity_rps is measured on the "
                "committing machine's simulation (deterministic), "
                "wall_clock_seconds and stress.wall_clock_seconds are this "
                "script's runtimes. Regenerate with "
                "`python benchmarks/bench_failure_domains.py`."
            ),
            # Enough to rebuild both schedules from this artifact alone.
            "outage_schedule": schedule.as_dict(),
            "stress_faults": stress_generator.provenance(),
        },
        "quick": bool(quick),
        "traffic": {
            "datasets": list(TRACE_DATASETS),
            "num_requests": len(trace),
            "offered_rate_rps": round(trace.offered_rate_rps, 3),
            "overload_factor": OVERLOAD_FACTOR,
            "seed": SEED,
        },
        "topology": topology.as_dict(),
        "domain_outages": [
            {
                "domain": domain,
                "cycles": [
                    {"crash_fraction": crash, "recover_fraction": recover}
                    for crash, recover in cycles
                ],
            }
            for domain, cycles in DOMAIN_OUTAGES
        ],
        "retry_budget": RETRY_BUDGET,
        "scheduler": {
            "max_batch_size": MAX_BATCH_SIZE,
            "max_wait_seconds": MAX_WAIT_SECONDS,
        },
        "slo_seconds": round(slo_seconds, 6),
        "capacity_rps": round(capacity_rps, 3),
        "domain_oblivious": oblivious_entry,
        "domain_aware": aware_entry,
        "goodput_ratio": round(goodput_ratio, 3),
        "min_goodput_ratio": MIN_DOMAIN_GOODPUT_RATIO,
        "stress": {
            "num_requests": len(stress_trace),
            "num_fault_events": len(stress_faults.expanded_events),
            "num_domain_macros": len(stress_faults.domain_events),
            "offered": stress_goodput.offered,
            "served": stress_goodput.served,
            "shed": stress_goodput.shed,
            "failed": stress_goodput.failed,
            "goodput_rps": round(stress_goodput.goodput_rps, 3),
            "scaling_events": len(stress_report.scaling_timeline),
            "domain_outages": stress_outages,
            "conserved": conserved,
            "wall_clock_seconds": round(stress_seconds, 4),
        },
        "wall_clock_seconds": round(time.perf_counter() - started, 4),
    }
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(f"\nresults written to {RESULT_PATH}")
    return document


def test_failure_domains(benchmark):
    """Pytest-benchmark entry point with the placement acceptance gate."""
    from common import run_once

    document = run_once(benchmark, lambda: run(quick=True))
    assert document["goodput_ratio"] >= MIN_DOMAIN_GOODPUT_RATIO
    assert document["stress"]["conserved"]
    assert document["stress"]["domain_outages"] > 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller request budget (CI mode)",
    )
    args = parser.parse_args(argv)
    document = run(quick=args.quick)
    if document["goodput_ratio"] < document["min_goodput_ratio"]:
        print(
            f"FAILURE-DOMAIN REGRESSION: goodput ratio "
            f"{document['goodput_ratio']:.2f}x < {MIN_DOMAIN_GOODPUT_RATIO:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
