"""Fig. 21: average LUT utilisation of AutoPre vs StatPre."""

from repro.system.variants import AutoPreSystem, StatPreSystem

from common import all_workloads, print_figure, run_once


def reproduce_fig21():
    """Per-dataset LUT utilisation of the two static AutoGNN variants."""
    auto = AutoPreSystem()
    stat = StatPreSystem()
    rows = []
    totals = {"AutoPre": 0.0, "StatPre": 0.0}
    workloads = all_workloads()
    for key, workload in workloads.items():
        a = auto.evaluate(workload).extras["lut_utilization"]
        s = stat.evaluate(workload).extras["lut_utilization"]
        totals["AutoPre"] += a
        totals["StatPre"] += s
        rows.append([key, round(100 * a, 1), round(100 * s, 1)])
    n = len(workloads)
    rows.append(["avg", round(100 * totals["AutoPre"] / n, 1), round(100 * totals["StatPre"] / n, 1)])
    return rows


def test_fig21_lut_utilization(benchmark):
    rows = run_once(benchmark, reproduce_fig21)
    print_figure(
        "Fig. 21: LUT utilisation (paper: AutoPre 47%, StatPre 82.2%, a 1.7x gap)",
        ["dataset", "AutoPre_%", "StatPre_%"],
        rows,
    )
    avg_auto, avg_stat = rows[-1][1], rows[-1][2]
    assert avg_stat > avg_auto
    assert avg_stat / max(avg_auto, 1e-9) >= 1.3
