"""Fig. 24: accuracy of the cost model against the cycle-level simulator.

The simulator runs on scaled synthetic stand-ins of AX and AM (the functional
engine cannot hold the full 123M-edge graphs), while the cost model is
evaluated on exactly the same scaled workload parameters, so the comparison is
apples-to-apples.
"""

from repro.core.config import HardwareConfig
from repro.core.cost_model import CostModel, WorkloadParams
from repro.core.kernels import ordering_cycle_count, reshaping_cycle_count, selection_cycle_count
from repro.graph.convert import edge_order
from repro.graph.datasets import load_dataset

from common import print_figure, run_once

SCR_WIDTHS = [2, 8, 32, 128, 512]
UPE_WIDTHS = [16, 32, 64, 128, 256]
SCALE = 1.0 / 2000.0


def _accuracy(simulated: float, estimated: float) -> float:
    if simulated <= 0:
        return 1.0
    return max(0.0, 1.0 - abs(simulated - estimated) / simulated)


def reproduce_fig24a():
    """SCR (reshaping) cycles: simulator vs cost model for AX and AM."""
    model = CostModel()
    rows = []
    for key in ("AX", "AM"):
        graph = load_dataset(key, scale=SCALE)
        ordered = edge_order(graph)
        params = WorkloadParams(num_nodes=graph.num_nodes, num_edges=graph.num_edges)
        for width in SCR_WIDTHS:
            config = HardwareConfig(num_upes=64, upe_width=64, num_scrs=1, scr_width=width)
            simulated = reshaping_cycle_count(ordered.dst, graph.num_nodes, config)
            estimated = model.reshaping_cycles(params, config)
            rows.append([key, width, int(simulated), int(estimated),
                         round(100 * _accuracy(simulated, estimated), 1)])
    return rows


def reproduce_fig24b():
    """UPE (ordering + selecting) cycles: simulator formulas vs cost model for AM."""
    model = CostModel()
    graph = load_dataset("AM", scale=SCALE)
    params = WorkloadParams(
        num_nodes=graph.num_nodes, num_edges=graph.num_edges, num_layers=2, k=10, batch_size=64
    )
    rows = []
    for width in UPE_WIDTHS:
        config = HardwareConfig(num_upes=32, upe_width=width)
        sim_ordering = ordering_cycle_count(graph.num_edges, graph.num_nodes, config)
        est_ordering = model.ordering_cycles(params, config)
        arrays = max(params.total_selections // params.k, 1)
        sim_selecting = selection_cycle_count(params.total_selections, arrays, config)
        est_selecting = model.selecting_cycles(params, config)
        rows.append(
            [
                width,
                int(sim_ordering),
                int(est_ordering),
                round(100 * _accuracy(sim_ordering, est_ordering), 1),
                int(sim_selecting),
                int(est_selecting),
                round(100 * _accuracy(sim_selecting, est_selecting), 1),
            ]
        )
    return rows


def test_fig24_cost_model_accuracy(benchmark):
    def run():
        return reproduce_fig24a(), reproduce_fig24b()

    fig_a, fig_b = run_once(benchmark, run)
    print_figure(
        "Fig. 24a: SCR cycles, simulator vs cost model (paper accuracy ~98%)",
        ["dataset", "scr_width", "simulated", "estimated", "accuracy_%"],
        fig_a,
    )
    print_figure(
        "Fig. 24b (AM): UPE cycles, simulator vs cost model (paper accuracy ~94%)",
        ["upe_width", "sim_ordering", "est_ordering", "acc_ordering_%",
         "sim_selecting", "est_selecting", "acc_selecting_%"],
        fig_b,
    )
    # The cost model tracks the simulator closely and captures the width trend.
    assert sum(row[4] for row in fig_a) / len(fig_a) >= 60.0
    assert sum(row[6] for row in fig_b) / len(fig_b) >= 70.0
    assert sum(row[3] for row in fig_b) / len(fig_b) >= 55.0
    sim_curve = [row[2] for row in fig_a if row[0] == "AM"]
    est_curve = [row[3] for row in fig_a if row[0] == "AM"]
    assert sim_curve == sorted(sim_curve, reverse=True)
    assert est_curve == sorted(est_curve, reverse=True)
