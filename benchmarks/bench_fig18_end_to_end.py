"""Fig. 18: end-to-end GNN inference latency of all seven compared systems."""

from repro.analysis.metrics import geometric_mean
from repro.system.service import build_services

from common import all_workloads, print_figure, run_once

SYSTEMS = ["CPU", "GPU", "GSamp", "FPGA", "AutoPre", "StatPre", "DynPre"]


def reproduce_fig18():
    """Per-dataset end-to-end latency normalised to GPU plus speedups over CPU."""
    services = build_services()
    workloads = all_workloads()
    rows = []
    speedups = {name: [] for name in SYSTEMS}
    bandwidth = []
    for key, workload in workloads.items():
        reports = {}
        for name in SYSTEMS:
            services[name].serve(workload)  # warm-up (DynPre reconfigures here)
            reports[name] = services[name].serve(workload)
        gpu = reports["GPU"].total_seconds
        cpu = reports["CPU"].total_seconds
        row = [key]
        for name in SYSTEMS:
            total = reports[name].total_seconds
            row.append(round(total / gpu, 3))
            speedups[name].append(cpu / total)
        row.append(round(100 * reports["DynPre"].system_latency.bandwidth_utilization, 1))
        rows.append(row)
        bandwidth.append(reports["DynPre"].system_latency.bandwidth_utilization)
    summary = ["geomean speedup vs CPU"]
    for name in SYSTEMS:
        summary.append(round(geometric_mean(speedups[name]), 2))
    summary.append(round(100 * sum(bandwidth) / len(bandwidth), 1))
    rows.append(summary)
    return rows


def test_fig18_end_to_end_latency(benchmark):
    rows = run_once(benchmark, reproduce_fig18)
    print_figure(
        "Fig. 18: end-to-end latency normalised to GPU (paper speedups over CPU:"
        " GPU 3.4x, GSamp 4.1x, FPGA 4.5x, AutoPre 7.3x, StatPre 8.4x, DynPre 9.0x;"
        " DynPre bandwidth utilisation 59.8% avg)",
        ["dataset"] + [f"{s}/GPU" for s in SYSTEMS] + ["DynPre_bw_%"],
        rows,
    )
    summary = rows[-1]
    speedups = dict(zip(SYSTEMS, summary[1:-1]))
    # Ordering of the systems matches the paper: every acceleration step helps.
    assert speedups["GPU"] > 1.0
    assert speedups["GSamp"] > speedups["GPU"]
    assert speedups["AutoPre"] > speedups["FPGA"]
    assert speedups["DynPre"] >= speedups["StatPre"] >= speedups["AutoPre"] * 0.999
    # Magnitudes land in the paper's neighbourhood.
    assert 2.0 <= speedups["GPU"] <= 5.5
    assert 6.0 <= speedups["DynPre"] <= 20.0
