"""Fig. 6: breakdown of GNN preprocessing latency into its four tasks."""

from repro.analysis.metrics import breakdown_percentages
from repro.baselines.calibration import GPU_CALIBRATION
from repro.baselines.cpu import software_task_latencies
from repro.graph.datasets import DATASETS, size_class

from common import all_workloads, print_figure, run_once


def reproduce_fig6():
    """Per-task percentage of GPU preprocessing latency for each dataset."""
    rows = []
    for key, workload in all_workloads().items():
        latencies = software_task_latencies(workload, GPU_CALIBRATION)
        pct = breakdown_percentages(latencies.as_dict())
        rows.append(
            [
                key,
                size_class(DATASETS[key]),
                round(pct["ordering"], 1),
                round(pct["reshaping"], 1),
                round(pct["selecting"], 1),
                round(pct["reindexing"], 1),
            ]
        )
    return rows


def test_fig06_preprocessing_breakdown(benchmark):
    rows = run_once(benchmark, reproduce_fig6)
    print_figure(
        "Fig. 6: GPU preprocessing breakdown (paper: sampling dominates small graphs,"
        " conversion dominates >10M-edge graphs)",
        ["dataset", "size", "ordering_%", "reshaping_%", "selecting_%", "reindexing_%"],
        rows,
    )
    by_key = {row[0]: row for row in rows}
    # Small graphs: selection + reindexing dominate.
    assert by_key["PH"][4] + by_key["PH"][5] > by_key["PH"][2] + by_key["PH"][3]
    # Large graphs: conversion (ordering + reshaping) dominates, led by reshaping.
    assert by_key["AM"][2] + by_key["AM"][3] > by_key["AM"][4] + by_key["AM"][5]
    assert by_key["AM"][3] > by_key["AM"][2]
