"""Fig. 23: finding the optimal hardware configuration (SCR and UPE sweeps)."""

import math

from repro.core.config import HardwareConfig, LUTS_PER_UPE_ELEMENT, scaled_default_config
from repro.core.cost_model import CostModel
from repro.core.kernels import reshaping_cycle_estimate
from repro.system.workload import WorkloadProfile

from common import print_figure, run_once

SCR_WIDTHS = [1, 4, 16, 64, 256, 1024]
SCR_SLOTS = [1, 2, 4, 8]
UPE_WIDTHS = [16, 32, 64, 128, 256, 512]


def scr_slot_utilization(workload, width: int, slots: int) -> float:
    """Fraction of cycles in which the SCR slots stream a fresh edge segment."""
    config = HardwareConfig(num_upes=1, upe_width=64, num_scrs=slots, scr_width=width)
    cycles = reshaping_cycle_estimate(workload.num_edges, workload.num_nodes, config)
    if cycles <= 0:
        return 0.0
    segments = math.ceil(workload.num_edges / width)
    return min(segments / cycles, 1.0)


def reproduce_fig23a(dataset: str = "AX"):
    """Slot utilisation under varying SCR width and slot count (Fig. 23a)."""
    workload = WorkloadProfile.from_dataset(dataset)
    rows = []
    for width in SCR_WIDTHS:
        row = [width]
        for slots in SCR_SLOTS:
            row.append(round(100 * scr_slot_utilization(workload, width, slots), 1))
        rows.append(row)
    return rows


def reproduce_fig23b(dataset: str = "AM"):
    """Ordering/selecting/total cycles under varying UPE width (Fig. 23b).

    The total UPE LUT budget is fixed, so widening each UPE reduces the number
    of instances, trading merge throughput against selection throughput.
    """
    workload = WorkloadProfile.from_dataset(dataset).to_cost_params()
    model = CostModel()
    budget = scaled_default_config().upe_region_budget()
    rows = []
    for width in UPE_WIDTHS:
        count = max(budget // (width * LUTS_PER_UPE_ELEMENT), 1)
        config = HardwareConfig(num_upes=count, upe_width=width)
        ordering = model.ordering_cycles(workload, config)
        selecting = model.selecting_cycles(workload, config)
        rows.append([width, count, int(ordering), int(selecting), int(ordering + selecting)])
    return rows


def test_fig23_optimal_hardware_configuration(benchmark):
    def run():
        return reproduce_fig23a("AX"), reproduce_fig23b("AM")

    fig_a, fig_b = run_once(benchmark, run)
    print_figure(
        "Fig. 23a (AX): SCR slot utilisation (%) vs width, one column per slot count",
        ["width"] + [f"{s}_slot" for s in SCR_SLOTS],
        fig_a,
    )
    print_figure(
        "Fig. 23b (AM): UPE cycles vs width at a fixed LUT budget",
        ["upe_width", "num_upes", "ordering", "selecting", "total"],
        fig_b,
    )
    # For a low-degree graph like AX, adding SCR slots raises utilisation.
    for row in fig_a:
        assert row[-1] >= row[1] - 1e-6
    # Ordering cycles drop as UPEs widen; selection cycles rise as UPEs become
    # fewer, so the total has an interior optimum (saturation in the paper).
    ordering = [row[2] for row in fig_b]
    selecting = [row[3] for row in fig_b]
    assert ordering[-1] <= ordering[0]
    assert selecting[-1] >= selecting[0]
