"""Serving-engine speed benchmark: fast engine vs reference, same trace.

Replays one fixed open-loop Poisson trace (the Table II PH/AX/MV mix) through
two DynPre clusters that differ only in ``engine=`` — the pure-Python
reference event loop vs the indexed/caching fast engine — and records the
wall-clock of each ``serve_trace`` call per trace scale.  Both reports are
asserted byte-identical before any timing is trusted: a fast engine that
drifts from the reference is a bug, not a speedup.

The acceptance gate — fast >= 5x reference on the 20k-request trace (quick
mode: 5k requests, >= 3x) — is enforced by the exit code and the
pytest-benchmark entry, so CI fails if the fast engine regresses.  A
fast-engine-only 100k-request point (the "interactive speed" headline; the
reference would take minutes there) is recorded without a gate.

Results are written to ``BENCH_engine_speed.json`` at the repo root;
``benchmarks/check_perf_regression.py`` compares fresh runs against the
committed copy (speedup floor + machine-normalized wall-clock check).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.serving import (
    BatchScheduler,
    ENGINE_FAST,
    ENGINE_REFERENCE,
    OpenLoopArrivals,
    POLICY_LEAST_LOADED,
    ShardedServiceCluster,
)
from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

#: Output path of the machine-readable results (repo root, tracked by PRs).
RESULT_PATH = REPO_ROOT / "BENCH_engine_speed.json"

#: Workload mix of the trace (same Table II mix as the other serving benches).
TRACE_DATASETS = ("PH", "AX", "MV")

#: Offered load of the open-loop trace (requests/second).
OFFERED_RATE_RPS = 500.0

#: Scheduler settings shared by both engines.
MAX_BATCH_SIZE = 4
MAX_WAIT_SECONDS = 0.005

#: Shard count of both clusters.
NUM_SHARDS = 4

#: Gated trace scales: (num_requests, minimum fast-vs-reference speedup).
GATED_SCALES = ((5_000, 3.0), (20_000, 5.0))

#: Fast-engine-only showcase scale (no reference run, no gate).
SHOWCASE_SCALE = 100_000

SEED = 1

PROVENANCE = (
    "wall-clock seconds measured around ShardedServiceCluster.serve_trace on "
    "this machine; simulated metrics are engine-independent (byte-identical "
    "reports, asserted before timing). Regenerate with "
    "`python benchmarks/bench_engine_speed.py`."
)


def _trace(num_requests: int):
    mix = [WorkloadProfile.from_dataset(key) for key in TRACE_DATASETS]
    trace = OpenLoopArrivals(mix, rate_rps=OFFERED_RATE_RPS, seed=SEED).trace(num_requests)
    # Materialize the lazy request objects up front so the one-time cost is
    # charged to neither timed serve (both engines then see identical input
    # state, which the regression script's machine-factor normalization
    # assumes).
    trace.requests
    return trace


def _cluster(services, engine: str) -> ShardedServiceCluster:
    return ShardedServiceCluster(
        services["DynPre"],
        num_shards=NUM_SHARDS,
        scheduler=BatchScheduler(
            max_batch_size=MAX_BATCH_SIZE, max_wait_seconds=MAX_WAIT_SECONDS
        ),
        policy=POLICY_LEAST_LOADED,
        engine=engine,
    )


def _timed_serve(services, engine: str, trace):
    cluster = _cluster(services, engine)
    started = time.perf_counter()
    report = cluster.serve_trace(trace)
    elapsed = time.perf_counter() - started
    return report, elapsed


def run(quick: bool = False) -> Dict:
    """Execute the benchmark and return (and persist) the result document."""
    services = build_services()
    results: List[Dict] = []
    failures: List[str] = []

    scales = GATED_SCALES[:1] if quick else GATED_SCALES
    for num_requests, min_speedup in scales:
        trace = _trace(num_requests)
        reference_report, reference_seconds = _timed_serve(
            services, ENGINE_REFERENCE, trace
        )
        fast_report, fast_seconds = _timed_serve(services, ENGINE_FAST, trace)
        reference_rendered = json.dumps(reference_report.as_dict(), sort_keys=True)
        fast_rendered = json.dumps(fast_report.as_dict(), sort_keys=True)
        if reference_rendered != fast_rendered:
            raise AssertionError(
                f"engine divergence at {num_requests} requests: fast report is "
                "not byte-identical to the reference report"
            )
        speedup = reference_seconds / max(fast_seconds, 1e-12)
        results.append(
            {
                "scale": num_requests,
                "reference_seconds": round(reference_seconds, 4),
                "fast_seconds": round(fast_seconds, 4),
                "speedup": round(speedup, 2),
                "min_speedup": min_speedup,
                "identical_reports": True,
            }
        )
        verdict = "ok" if speedup >= min_speedup else "REGRESSION"
        print(
            f"{num_requests:>7} requests: reference {reference_seconds:7.2f}s | "
            f"fast {fast_seconds:7.3f}s | {speedup:6.1f}x (gate >= {min_speedup:.0f}x) "
            f"| {verdict}"
        )
        if speedup < min_speedup:
            failures.append(
                f"{num_requests} requests: {speedup:.1f}x below the {min_speedup:.0f}x gate"
            )

    showcase: Optional[Dict] = None
    if not quick:
        trace = _trace(SHOWCASE_SCALE)
        report, fast_seconds = _timed_serve(services, ENGINE_FAST, trace)
        showcase = {
            "scale": SHOWCASE_SCALE,
            "fast_seconds": round(fast_seconds, 4),
            "throughput_rps": round(report.throughput_rps, 3),
            "p99_seconds": round(report.latency.p99, 6),
        }
        print(
            f"{SHOWCASE_SCALE:>7} requests: fast-only {fast_seconds:7.2f}s "
            f"(reference skipped) | {report.throughput_rps:8.1f} simulated rps"
        )

    document = {
        "benchmark": "engine_speed",
        "_provenance": PROVENANCE,
        "quick": bool(quick),
        "trace": {
            "datasets": list(TRACE_DATASETS),
            "offered_rate_rps": OFFERED_RATE_RPS,
            "process": "poisson",
            "seed": SEED,
        },
        "cluster": {
            "system": "DynPre",
            "num_shards": NUM_SHARDS,
            "policy": POLICY_LEAST_LOADED,
            "max_batch_size": MAX_BATCH_SIZE,
            "max_wait_seconds": MAX_WAIT_SECONDS,
        },
        "results": results,
        "showcase_100k": showcase,
        "wall_clock_seconds": round(
            sum(entry["reference_seconds"] + entry["fast_seconds"] for entry in results)
            + (showcase["fast_seconds"] if showcase else 0.0),
            4,
        ),
    }
    if failures:
        document["failures"] = failures
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(f"\nresults written to {RESULT_PATH}")
    return document


def test_engine_speed(benchmark):
    """Pytest-benchmark entry point with the speedup acceptance gate."""
    from common import run_once

    document = run_once(benchmark, lambda: run(quick=True))
    for entry in document["results"]:
        assert entry["speedup"] >= entry["min_speedup"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="5k-request gate only, skip 20k and the 100k showcase (CI mode)",
    )
    args = parser.parse_args(argv)
    document = run(quick=args.quick)
    if document.get("failures"):
        for failure in document["failures"]:
            print(f"ENGINE SPEED REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
