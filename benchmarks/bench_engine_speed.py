"""Serving-engine speed benchmark: fast engine vs reference, same trace.

Replays one fixed open-loop Poisson trace (the Table II PH/AX/MV mix) through
two DynPre clusters that differ only in ``engine=`` — the pure-Python
reference event loop vs the indexed/caching fast engine — and records the
wall-clock of each ``serve_trace`` call per trace scale.  Both reports are
asserted byte-identical before any timing is trusted: a fast engine that
drifts from the reference is a bug, not a speedup.

The fast engine itself has two offline loops — the per-event loop and the
array-native *chunked* loop ``serve_trace`` selects by default — so each
gated scale times three runs: reference, per-event fast (``chunked=False``)
and chunked fast.  All three reports are asserted byte-identical.

Acceptance gates, enforced by the exit code and the pytest-benchmark entry:
fast (chunked) >= 5x reference at 20k requests (quick mode: 5k, >= 3x), and
chunked >= its per-scale floor over the per-event fast loop.  A
fast-engine-only 100k-request point (the "interactive speed" headline; the
reference would take minutes there) is recorded without a gate, and the
full run adds a **1M-request fast-only tier**: chunked vs per-event, gated
at >= 3x with byte-identical reports (the scale the array-native loop
exists for).

Results are written to ``BENCH_engine_speed.json`` at the repo root;
``benchmarks/check_perf_regression.py`` compares fresh runs against the
committed copy (speedup floor + machine-normalized wall-clock check).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.serving import (
    BatchScheduler,
    ENGINE_FAST,
    ENGINE_REFERENCE,
    OpenLoopArrivals,
    POLICY_LEAST_LOADED,
    ShardedServiceCluster,
)
from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

#: Output path of the machine-readable results (repo root, tracked by PRs).
RESULT_PATH = REPO_ROOT / "BENCH_engine_speed.json"

#: Workload mix of the trace (same Table II mix as the other serving benches).
TRACE_DATASETS = ("PH", "AX", "MV")

#: Offered load of the open-loop trace (requests/second).
OFFERED_RATE_RPS = 500.0

#: Scheduler settings shared by both engines.
MAX_BATCH_SIZE = 4
MAX_WAIT_SECONDS = 0.005

#: Shard count of both clusters.
NUM_SHARDS = 4

#: Gated trace scales: (num_requests, minimum fast-vs-reference speedup,
#: minimum chunked-vs-per-event speedup).
GATED_SCALES = ((5_000, 3.0, 1.1), (20_000, 5.0, 1.4))

#: Fast-engine-only showcase scale (no reference run, no gate).
SHOWCASE_SCALE = 100_000

#: Fast-only million-request tier: chunked vs per-event loop, no reference.
MILLION_SCALE = 1_000_000

#: Minimum chunked-vs-per-event speedup at the million-request tier.
MIN_MILLION_SPEEDUP = 3.0

#: Wall-clock ceiling for the chunked 1M replay (machine-independent smoke
#: budget; ~10x headroom over a laptop run).
MILLION_WALL_BUDGET_SECONDS = 60.0

SEED = 1

PROVENANCE = (
    "wall-clock seconds measured around ShardedServiceCluster.serve_trace on "
    "this machine; simulated metrics are engine-independent (byte-identical "
    "reports, asserted before timing). Regenerate with "
    "`python benchmarks/bench_engine_speed.py`."
)


def _trace(num_requests: int):
    mix = [WorkloadProfile.from_dataset(key) for key in TRACE_DATASETS]
    trace = OpenLoopArrivals(mix, rate_rps=OFFERED_RATE_RPS, seed=SEED).trace(num_requests)
    # Materialize the lazy request objects up front so the one-time cost is
    # charged to neither timed serve (both engines then see identical input
    # state, which the regression script's machine-factor normalization
    # assumes).
    trace.requests
    return trace


def _cluster(services, engine: str) -> ShardedServiceCluster:
    return ShardedServiceCluster(
        services["DynPre"],
        num_shards=NUM_SHARDS,
        scheduler=BatchScheduler(
            max_batch_size=MAX_BATCH_SIZE, max_wait_seconds=MAX_WAIT_SECONDS
        ),
        policy=POLICY_LEAST_LOADED,
        engine=engine,
    )


def _timed_serve(services, engine: str, trace):
    cluster = _cluster(services, engine)
    started = time.perf_counter()
    report = cluster.serve_trace(trace)
    elapsed = time.perf_counter() - started
    return report, elapsed


def _timed_fast(services, trace, chunked: bool):
    """Time one fast-engine replay with the offline loop pinned explicitly."""
    from repro.serving.engine import serve_trace_fast

    cluster = _cluster(services, ENGINE_FAST)
    started = time.perf_counter()
    report = serve_trace_fast(cluster, trace, chunked=chunked)
    elapsed = time.perf_counter() - started
    return report, elapsed


def run_million(services=None) -> Dict:
    """The fast-only 1M-request tier: chunked vs per-event loop.

    Returns the result entry (also embedded in the full run's document);
    raises on report divergence.  The reference engine is deliberately
    absent — it would take minutes at this scale — so the regression
    script normalizes machine speed with the per-event fast loop instead.
    """
    if services is None:
        services = build_services()
    trace = _trace(MILLION_SCALE)
    event_report, event_seconds = _timed_fast(services, trace, chunked=False)
    chunked_report, chunked_seconds = _timed_fast(services, trace, chunked=True)
    if json.dumps(event_report.as_dict(), sort_keys=True) != json.dumps(
        chunked_report.as_dict(), sort_keys=True
    ):
        raise AssertionError(
            f"engine divergence at {MILLION_SCALE} requests: chunked report is "
            "not byte-identical to the per-event fast report"
        )
    speedup = event_seconds / max(chunked_seconds, 1e-12)
    entry = {
        "scale": MILLION_SCALE,
        "event_seconds": round(event_seconds, 4),
        "chunked_seconds": round(chunked_seconds, 4),
        "chunked_speedup": round(speedup, 2),
        "min_chunked_speedup": MIN_MILLION_SPEEDUP,
        "wall_budget_seconds": MILLION_WALL_BUDGET_SECONDS,
        "identical_reports": True,
    }
    verdict = "ok" if speedup >= MIN_MILLION_SPEEDUP else "REGRESSION"
    print(
        f"{MILLION_SCALE:>7} requests: per-event {event_seconds:7.2f}s | "
        f"chunked {chunked_seconds:7.3f}s | {speedup:6.1f}x "
        f"(gate >= {MIN_MILLION_SPEEDUP:.0f}x) | {verdict}"
    )
    return entry


def run(quick: bool = False) -> Dict:
    """Execute the benchmark and return (and persist) the result document."""
    services = build_services()
    results: List[Dict] = []
    failures: List[str] = []

    scales = GATED_SCALES[:1] if quick else GATED_SCALES
    for num_requests, min_speedup, min_chunked in scales:
        trace = _trace(num_requests)
        reference_report, reference_seconds = _timed_serve(
            services, ENGINE_REFERENCE, trace
        )
        event_report, event_seconds = _timed_fast(services, trace, chunked=False)
        fast_report, fast_seconds = _timed_fast(services, trace, chunked=True)
        reference_rendered = json.dumps(reference_report.as_dict(), sort_keys=True)
        fast_rendered = json.dumps(fast_report.as_dict(), sort_keys=True)
        event_rendered = json.dumps(event_report.as_dict(), sort_keys=True)
        if reference_rendered != fast_rendered or reference_rendered != event_rendered:
            raise AssertionError(
                f"engine divergence at {num_requests} requests: fast reports are "
                "not byte-identical to the reference report"
            )
        speedup = reference_seconds / max(fast_seconds, 1e-12)
        chunked_speedup = event_seconds / max(fast_seconds, 1e-12)
        results.append(
            {
                "scale": num_requests,
                "reference_seconds": round(reference_seconds, 4),
                "fast_seconds": round(fast_seconds, 4),
                "event_seconds": round(event_seconds, 4),
                "speedup": round(speedup, 2),
                "min_speedup": min_speedup,
                "chunked_speedup": round(chunked_speedup, 2),
                "min_chunked_speedup": min_chunked,
                "identical_reports": True,
            }
        )
        verdict = "ok" if (speedup >= min_speedup and chunked_speedup >= min_chunked) \
            else "REGRESSION"
        print(
            f"{num_requests:>7} requests: reference {reference_seconds:7.2f}s | "
            f"per-event {event_seconds:7.3f}s | chunked {fast_seconds:7.3f}s | "
            f"{speedup:6.1f}x (gate >= {min_speedup:.0f}x) | "
            f"chunked {chunked_speedup:5.2f}x (gate >= {min_chunked:.2f}x) | {verdict}"
        )
        if speedup < min_speedup:
            failures.append(
                f"{num_requests} requests: {speedup:.1f}x below the {min_speedup:.0f}x gate"
            )
        if chunked_speedup < min_chunked:
            failures.append(
                f"{num_requests} requests: chunked loop {chunked_speedup:.2f}x below "
                f"the {min_chunked:.2f}x gate over the per-event loop"
            )

    showcase: Optional[Dict] = None
    if not quick:
        trace = _trace(SHOWCASE_SCALE)
        report, fast_seconds = _timed_serve(services, ENGINE_FAST, trace)
        showcase = {
            "scale": SHOWCASE_SCALE,
            "fast_seconds": round(fast_seconds, 4),
            "throughput_rps": round(report.throughput_rps, 3),
            "p99_seconds": round(report.latency.p99, 6),
        }
        print(
            f"{SHOWCASE_SCALE:>7} requests: fast-only {fast_seconds:7.2f}s "
            f"(reference skipped) | {report.throughput_rps:8.1f} simulated rps"
        )

    million: Optional[Dict] = None
    if not quick:
        million = run_million(services)
        if million["chunked_speedup"] < million["min_chunked_speedup"]:
            failures.append(
                f"{MILLION_SCALE} requests: chunked loop "
                f"{million['chunked_speedup']:.2f}x below the "
                f"{million['min_chunked_speedup']:.0f}x gate over the per-event loop"
            )
        if million["chunked_seconds"] > million["wall_budget_seconds"]:
            failures.append(
                f"{MILLION_SCALE} requests: chunked wall-clock "
                f"{million['chunked_seconds']:.1f}s over the "
                f"{million['wall_budget_seconds']:.0f}s budget"
            )

    document = {
        "benchmark": "engine_speed",
        "_provenance": PROVENANCE,
        "quick": bool(quick),
        "trace": {
            "datasets": list(TRACE_DATASETS),
            "offered_rate_rps": OFFERED_RATE_RPS,
            "process": "poisson",
            "seed": SEED,
        },
        "cluster": {
            "system": "DynPre",
            "num_shards": NUM_SHARDS,
            "policy": POLICY_LEAST_LOADED,
            "max_batch_size": MAX_BATCH_SIZE,
            "max_wait_seconds": MAX_WAIT_SECONDS,
        },
        "results": results,
        "showcase_100k": showcase,
        "million": million,
        "wall_clock_seconds": round(
            sum(
                entry["reference_seconds"] + entry["fast_seconds"]
                + entry["event_seconds"]
                for entry in results
            )
            + (showcase["fast_seconds"] if showcase else 0.0)
            + (
                million["event_seconds"] + million["chunked_seconds"]
                if million
                else 0.0
            ),
            4,
        ),
    }
    if failures:
        document["failures"] = failures
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(f"\nresults written to {RESULT_PATH}")
    return document


def test_engine_speed(benchmark):
    """Pytest-benchmark entry point with the speedup acceptance gate."""
    from common import run_once

    document = run_once(benchmark, lambda: run(quick=True))
    for entry in document["results"]:
        assert entry["speedup"] >= entry["min_speedup"]
        assert entry["chunked_speedup"] >= entry["min_chunked_speedup"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="5k-request gate only, skip 20k, the 100k showcase and the 1M tier "
             "(CI mode)",
    )
    parser.add_argument(
        "--million", action="store_true",
        help="run only the fast-only 1M-request tier (chunked vs per-event)",
    )
    args = parser.parse_args(argv)
    if args.million:
        entry = run_million()
        ok = (
            entry["chunked_speedup"] >= entry["min_chunked_speedup"]
            and entry["chunked_seconds"] <= entry["wall_budget_seconds"]
        )
        return 0 if ok else 1
    document = run(quick=args.quick)
    if document.get("failures"):
        for failure in document["failures"]:
            print(f"ENGINE SPEED REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
