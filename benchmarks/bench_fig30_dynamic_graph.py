"""Fig. 30: end-to-end latency on a growing e-commerce graph (TB)."""

from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

from common import print_figure, run_once

#: The paper grows TB's edge count by ~112x (and its average degree by ~9.2x)
#: over the plotted horizon; we sweep the same growth factors directly.
GROWTH_FACTORS = [1, 2, 8, 32, 112]


def reproduce_fig30():
    services = build_services()
    final = WorkloadProfile.from_dataset("TB")
    rows = []
    for factor in GROWTH_FACTORS:
        edges = final.num_edges * factor // GROWTH_FACTORS[-1]
        # The user base is comparatively stable: edges accumulate on a slowly
        # growing node set, so the average degree rises with time.
        nodes = int(final.num_nodes * (0.3 + 0.7 * factor / GROWTH_FACTORS[-1]))
        workload = WorkloadProfile(
            name="TB",
            num_nodes=nodes,
            num_edges=edges,
            avg_degree=edges / max(nodes, 1),
            batch_size=final.batch_size,
        )
        row = [factor]
        for name in ("GPU", "StatPre", "DynPre"):
            services[name].serve(workload)
            row.append(round(services[name].serve(workload).total_seconds * 1e3, 1))
        rows.append(row)
    return rows


def test_fig30_dynamic_graph(benchmark):
    rows = run_once(benchmark, reproduce_fig30)
    print_figure(
        "Fig. 30 (TB): end-to-end latency as the graph grows (paper: StatPre's"
        " advantage over GPU widens; DynPre improves on StatPre by 35%)",
        ["growth_factor", "GPU_ms", "StatPre_ms", "DynPre_ms"],
        rows,
    )
    first, last = rows[0], rows[-1]
    # The AutoGNN advantage over the GPU widens as the graph grows.
    assert last[1] / last[2] > first[1] / first[2]
    # DynPre is never worse than StatPre in steady state.
    assert all(row[3] <= row[2] * 1.001 for row in rows)
